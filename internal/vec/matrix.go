package vec

import (
	"errors"
	"fmt"
)

// Matrix is a dense row-major matrix. Rows are Vectors sharing one backing
// array, so a Matrix of r×c floats costs a single allocation.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix allocates a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("vec: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, data: make([]float64, r*c)}
}

// MatrixFromRows builds a matrix whose rows are copies of the given vectors.
func MatrixFromRows(rows []Vector) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("vec: matrix from zero rows")
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, ErrDimMismatch
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns row i as a Vector aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector {
	return Vector(m.data[i*m.Cols : (i+1)*m.Cols])
}

// At returns m[i][j].
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns m[i][j] = x.
func (m *Matrix) Set(i, j int, x float64) { m.data[i*m.Cols+j] = x }

// MulVec returns m·x (dimension m.Rows).
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		out[i] = s
	}
	return out
}

// MulVecInto computes m·x into dst (length m.Rows), avoiding MulVec's
// per-call allocation — the difference matters when rotating every point of
// a large cluster.
func (m *Matrix) MulVecInto(dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("vec: MulVecInto dimensions %d→%d, want %d→%d", len(x), len(dst), m.Cols, m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		dst[i] = s
	}
}

// TMulVec returns mᵀ·x (dimension m.Cols). Used to map a rotated point back
// to the original coordinates when the rows of m are an orthonormal basis.
func (m *Matrix) TMulVec(x Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("vec: TMulVec dimension mismatch %d vs %d", len(x), m.Rows))
	}
	out := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		for j := range row {
			out[j] += row[j] * xi
		}
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// GramSchmidt orthonormalizes the rows of m in place using modified
// Gram–Schmidt with re-orthogonalization, returning an error if the rows are
// (numerically) linearly dependent. On success the rows form an orthonormal
// set: ⟨rᵢ, rⱼ⟩ = δᵢⱼ up to floating-point error.
func (m *Matrix) GramSchmidt() error {
	const tiny = 1e-12
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		// Two passes of projection removal for numerical stability
		// ("twice is enough" re-orthogonalization).
		for pass := 0; pass < 2; pass++ {
			for j := 0; j < i; j++ {
				rj := m.Row(j)
				c := ri.Dot(rj)
				for k := range ri {
					ri[k] -= c * rj[k]
				}
			}
		}
		n := ri.Norm()
		if n < tiny {
			return fmt.Errorf("vec: GramSchmidt: row %d is linearly dependent", i)
		}
		ri.ScaleInPlace(1 / n)
	}
	return nil
}
