package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process- or server-scoped set of metric families rendered
// in the Prometheus text exposition format. Metric handles (Counter, Gauge,
// Histogram) are get-or-create by (name, labels) and meant to be resolved
// once and kept: after resolution, updates are lock-free atomics with zero
// allocations, cheap enough for always-on use in warm query paths.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	scrapers []func(io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry. Library-level instrumentation
// (query stage timings, shard fan-out latency, replication health counters)
// records here; daemons render it alongside their own server-scoped
// registries.
var Default = NewRegistry()

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

type family struct {
	name    string
	help    string
	kind    familyKind
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // labelString -> *Counter | *Gauge | *Histogram
	order  []string
}

func (r *Registry) family(name, help string, kind familyKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]any)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// labelString renders alternating key/value pairs as {k1="v1",k2="v2"} in
// the order given (or "" for none). Label values are quoted with %q, so
// callers must keep them free of characters that would need more escaping
// than Go string quoting provides — the daemon's config validation bans
// quotes and newlines in principal names for exactly this reason.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func (f *family) get(labels []string, make func() any) any {
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.series[ls]
	if m == nil {
		m = make()
		f.series[ls] = m
		f.order = append(f.order, ls)
	}
	return m
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; Inc adds one; Value reads it.
func (c *Counter) Add(n int64)  { c.v.Add(n) }
func (c *Counter) Inc()         { c.v.Add(1) }
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with lock-free observation.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // one per bound plus +Inf
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one sample. Zero allocations; safe for hot paths.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Counter returns the named counter series, creating family and series as
// needed. labels are alternating key/value pairs; help is used on first
// creation of the family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.get(labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the named gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.get(labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the named histogram series with the given upper bounds
// (seconds, for latency histograms). All series of one family share the
// bounds passed at family creation.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	f := r.family(name, help, kindHistogram, bounds)
	return f.get(labels, func() any {
		return &Histogram{bounds: f.buckets, buckets: make([]atomic.Int64, len(f.buckets)+1)}
	}).(*Histogram)
}

// AddScrapeFunc registers a function invoked at every WriteText, after the
// registered families render. Daemons use it for gauges whose truth lives
// elsewhere (per-principal budget balances read from the ledger per scrape).
func (r *Registry) AddScrapeFunc(fn func(w io.Writer)) {
	r.mu.Lock()
	r.scrapers = append(r.scrapers, fn)
	r.mu.Unlock()
}

// WriteText renders every family (in registration order, series sorted by
// label string) followed by the scrape funcs, in the Prometheus text
// exposition format.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	var scrapers []func(io.Writer)
	scrapers = append(scrapers, r.scrapers...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.write(w)
	}
	for _, fn := range scrapers {
		fn(w)
	}
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	series := make([]any, len(order))
	for i, ls := range order {
		series[i] = f.series[ls]
	}
	f.mu.Unlock()
	sorted := make([]int, len(order))
	for i := range sorted {
		sorted[i] = i
	}
	sort.Slice(sorted, func(a, b int) bool { return order[sorted[a]] < order[sorted[b]] })

	typ := map[familyKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[f.kind]
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ)
	for _, i := range sorted {
		ls := order[i]
		switch m := series[i].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, ls, m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %g\n", f.name, ls, m.Value())
		case *Histogram:
			// Bucket lines append le to the series labels; cumulative
			// counts, then +Inf, _sum and _count, matching the daemon's
			// long-standing hand-rolled render byte for byte.
			prefix := "{"
			if ls != "" {
				prefix = ls[:len(ls)-1] + ","
			}
			cum := int64(0)
			for bi, bound := range m.bounds {
				cum += m.buckets[bi].Load()
				fmt.Fprintf(w, "%s_bucket%sle=\"%g\"} %d\n", f.name, prefix, bound, cum)
			}
			cum += m.buckets[len(m.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", f.name, prefix, cum)
			fmt.Fprintf(w, "%s_sum%s %g\n", f.name, ls, math.Float64frombits(m.sumBits.Load()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, m.count.Load())
		}
	}
}
