package obs

import (
	"io"
	"log/slog"
	"time"
)

// Logger is the structured logger of the serving tier: slog with a
// line-oriented key=value text handler plus a slow-query threshold. Like
// the rest of the package it must never be handed data values — attrs are
// names, durations, counts, addresses and trace IDs.
//
// A nil *Logger is valid and silent, so instrumented code needs no
// branches.
type Logger struct {
	s *slog.Logger
	// Slow is the query duration at or above which Query escalates from
	// Info to Warn with slow=true. Zero disables the escalation.
	Slow time.Duration
}

// NewLogger returns a Logger writing slog text lines to w at the given
// level, with the slow-query threshold slow (0 = no escalation).
func NewLogger(w io.Writer, level slog.Level, slow time.Duration) *Logger {
	return &Logger{
		s:    slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})),
		Slow: slow,
	}
}

// With returns a Logger whose lines all carry the given attrs.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...), Slow: l.Slow}
}

// Info logs at Info level. Nil-safe.
func (l *Logger) Info(msg string, args ...any) {
	if l != nil {
		l.s.Info(msg, args...)
	}
}

// Warn logs at Warn level. Nil-safe.
func (l *Logger) Warn(msg string, args ...any) {
	if l != nil {
		l.s.Warn(msg, args...)
	}
}

// Error logs at Error level. Nil-safe.
func (l *Logger) Error(msg string, args ...any) {
	if l != nil {
		l.s.Error(msg, args...)
	}
}

// Debug logs at Debug level. Nil-safe.
func (l *Logger) Debug(msg string, args ...any) {
	if l != nil {
		l.s.Debug(msg, args...)
	}
}

// Query logs one finished query with its trace ID and duration, at Info —
// or at Warn with slow=true when d reaches the slow threshold. Extra args
// follow the usual slog key/value convention.
func (l *Logger) Query(id TraceID, name string, d time.Duration, args ...any) {
	if l == nil {
		return
	}
	base := []any{"trace_id", id.String(), "query", name, "duration", d.String()}
	base = append(base, args...)
	if l.Slow > 0 && d >= l.Slow {
		l.s.Warn("slow query", append(base, "slow", true)...)
		return
	}
	l.s.Info("query", base...)
}
