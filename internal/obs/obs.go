// Package obs is the zero-dependency observability layer: context-propagated
// trace IDs with hierarchical spans, a process-wide registry of counters,
// gauges and histograms rendered in the Prometheus text exposition format,
// and a structured slog-based logger with a slow-query threshold.
//
// The package is deliberately dumb about what it measures: spans and metrics
// carry names, durations, counts and sizes — never point coordinates,
// dataset values, or noise magnitudes. That restriction is the privacy
// stance of the whole telemetry surface (see the "Observability" section of
// the privcluster package documentation) and is enforced by tests, so keep
// every field of every type in this package a duration, a count, or a
// label string chosen from a fixed taxonomy.
//
// Tracing is opt-in per context and free when absent: StartSpan on a
// context without a trace returns the context unchanged and a nil *Span
// whose methods are all no-ops, so instrumented code needs no branches and
// the disabled fast path costs one context lookup and zero allocations.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceID is a 16-byte query-trace identifier. It is generated at the query
// entry point (library caller, daemon request) and propagated through
// contexts, the wire protocol's optional trace field, and log lines, so one
// query's work can be correlated across processes.
type TraceID [16]byte

// NewTraceID returns a random trace ID.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand failure is effectively impossible on supported
		// platforms; a zero ID (meaning "untraced") is the safe fallback.
		return TraceID{}
	}
	return id
}

// IsZero reports whether the ID is the zero value, which means "no trace".
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, fmt.Errorf("obs: trace id must be %d hex digits, got %q", 2*len(id), s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: bad trace id %q: %v", s, err)
	}
	return id, nil
}

// maxSpans caps the number of spans one trace will record. Past the cap,
// StartSpan degrades to a no-op rather than growing without bound — a deep
// sharded sweep can otherwise mint a span per RPC.
const maxSpans = 4096

// Trace is one query's span tree. A Trace is created at the query entry
// point, carried by context, and read back out (Tree, Spans) after the
// query completes. All methods are safe for concurrent use; spans may be
// started from the fan-out goroutines of a sharded sweep.
type Trace struct {
	id    TraceID
	start time.Time

	mu   sync.Mutex
	root *Span
	n    int
}

// NewTrace starts a trace with a fresh random ID.
func NewTrace() *Trace { return NewTraceWith(NewTraceID()) }

// NewTraceWith starts a trace with the given ID — the server side of a
// propagated trace uses the client's ID so the two halves correlate.
func NewTraceWith(id TraceID) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace's identifier. Nil-safe: a nil trace has a zero ID.
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Start returns the trace's start time.
func (t *Trace) Start() time.Time { return t.start }

// Span is one timed stage of a trace: a name from the span taxonomy, start
// and end instants, optional named counters (operation counts, sizes —
// never data values), and child spans. A nil *Span is valid and all its
// methods are no-ops, which is how the disabled fast path stays branch-free
// at call sites.
type Span struct {
	t        *Trace
	parent   *Span
	name     string
	start    time.Time
	end      time.Time
	counters []counterPair
	children []*Span
}

type counterPair struct {
	name  string
	value int64
}

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// ContextWith returns a context carrying the trace. Spans started from the
// returned context (and its descendants) attach to t.
func ContextWith(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// FromContext returns the context's trace, or nil when tracing is off.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// StartSpan starts a child span of the context's current span (or the root
// when none is open yet) and returns a context carrying the new span. When
// the context has no trace — the default — it returns (ctx, nil) with no
// allocation, and the nil span's methods are all no-ops. End the span with
// Span.End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	t, _ := ctx.Value(traceKey).(*Trace)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	s := t.newSpan(parent, name)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey, s), s
}

// CurrentSpan returns the context's innermost open span, or nil. Use it to
// add counters to the enclosing stage without opening a new span.
func CurrentSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// newSpan allocates and links a span. The first span of a trace becomes
// its root; later spans with no enclosing span attach to the root. Returns
// nil once the trace is full.
func (t *Trace) newSpan(parent *Span, name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n >= maxSpans {
		return nil
	}
	s := &Span{t: t, parent: parent, name: name, start: time.Now()}
	if t.root == nil {
		s.parent = nil
		t.root = s
	} else {
		if s.parent == nil {
			s.parent = t.root
		}
		s.parent.children = append(s.parent.children, s)
	}
	t.n++
	return s
}

// End marks the span finished. Nil-safe; ending twice keeps the first end.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.t.mu.Unlock()
}

// Count adds delta to the span's named counter, creating it at zero. The
// name must come from the fixed span taxonomy and the value must be an
// operation count or a size — never a data or noise value. Nil-safe.
func (s *Span) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].name == name {
			s.counters[i].value += delta
			return
		}
	}
	s.counters = append(s.counters, counterPair{name, delta})
}

// Duration returns the span's length, using "now" for a still-open span.
// Nil-safe (zero).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	return end.Sub(s.start)
}

// SpanInfo is the exported, immutable snapshot of one span, flattened in
// pre-order with its depth. It is the JSON shape served by the daemon's
// /v1/trace/{id} endpoint and the substrate of QueryStats stage listings.
type SpanInfo struct {
	Name     string           `json:"name"`
	Depth    int              `json:"depth"`
	StartUS  int64            `json:"start_us"` // offset from trace start
	DurUS    int64            `json:"duration_us"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Spans returns the trace's spans flattened in pre-order (root first,
// depth 0). Safe to call while the trace is still collecting.
func (t *Trace) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return appendSpans(nil, t.root, 0, t.start)
}

// Spans returns the span's subtree flattened in pre-order (the span itself
// at depth 0) — the shape QueryStats exposes when a query ran inside a
// larger trace (a daemon request) and wants only its own stages. Nil-safe.
func (s *Span) Spans() []SpanInfo {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return appendSpans(nil, s, 0, s.t.start)
}

// appendSpans flattens the subtree at s; the caller holds the trace lock.
func appendSpans(out []SpanInfo, s *Span, depth int, origin time.Time) []SpanInfo {
	if s == nil {
		return out
	}
	info := SpanInfo{
		Name:    s.name,
		Depth:   depth,
		StartUS: s.start.Sub(origin).Microseconds(),
		DurUS:   s.durationLocked().Microseconds(),
	}
	if len(s.counters) > 0 {
		info.Counters = make(map[string]int64, len(s.counters))
		for _, c := range s.counters {
			info.Counters[c.name] = c.value
		}
	}
	out = append(out, info)
	for _, c := range s.children {
		out = appendSpans(out, c, depth+1, origin)
	}
	return out
}

// Tree renders the span tree as indented text — one span per line with its
// duration and counters — for human consumption (onecluster -trace).
func (t *Trace) Tree() string {
	spans := t.Spans()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", t.ID())
	for _, s := range spans {
		fmt.Fprintf(&b, "%s%-24s %12s", strings.Repeat("  ", s.Depth+1), s.Name,
			time.Duration(s.DurUS)*time.Microsecond)
		if len(s.Counters) > 0 {
			keys := make([]string, 0, len(s.Counters))
			for k := range s.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%d", k, s.Counters[k])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
