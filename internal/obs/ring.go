package obs

import "sync"

// TraceRing keeps the last N completed traces, indexed by ID, so a daemon
// can serve span retrieval (GET /v1/trace/{id}) for recent queries without
// unbounded memory. Overwritten slots drop out of the index.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	byID map[TraceID]*Trace
}

// NewTraceRing returns a ring holding up to n traces (n < 1 is clamped
// to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*Trace, n), byID: make(map[TraceID]*Trace, n)}
}

// Add records a completed trace, evicting the oldest when full.
func (r *TraceRing) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil {
		delete(r.byID, old.ID())
	}
	r.buf[r.next] = t
	r.byID[t.ID()] = t
	r.next = (r.next + 1) % len(r.buf)
}

// Get returns the trace with the given ID, or nil when it has been evicted
// or never recorded.
func (r *TraceRing) Get(id TraceID) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}
