package obs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip %v != %v", back, id)
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestStartSpanDisabledIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "query")
	if s != nil {
		t.Fatal("span without trace should be nil")
	}
	if ctx2 != ctx {
		t.Fatal("context should be unchanged without a trace")
	}
	// Nil-span methods must all be safe.
	s.End()
	s.Count("ops", 1)
	_ = s.Duration()

	allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "query")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan allocates %v per run, want 0", allocs)
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTrace()
	ctx := ContextWith(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}

	ctx, root := StartSpan(ctx, "query/cluster")
	cctx, child := StartSpan(ctx, "build")
	child.Count("levels", 3)
	child.Count("levels", 2)
	if got := CurrentSpan(cctx); got != child {
		t.Fatal("CurrentSpan != innermost span")
	}
	_, grand := StartSpan(cctx, "lstep")
	grand.End()
	child.End()
	_, sib := StartSpan(ctx, "commit")
	sib.End()
	root.End()

	spans := tr.Spans()
	names := make([]string, len(spans))
	depths := make([]int, len(spans))
	for i, s := range spans {
		names[i], depths[i] = s.Name, s.Depth
	}
	wantNames := []string{"query/cluster", "build", "lstep", "commit"}
	wantDepths := []int{0, 1, 2, 1}
	for i := range wantNames {
		if i >= len(names) || names[i] != wantNames[i] || depths[i] != wantDepths[i] {
			t.Fatalf("spans = %v @ %v, want %v @ %v", names, depths, wantNames, wantDepths)
		}
	}
	if spans[1].Counters["levels"] != 5 {
		t.Fatalf("counter levels = %d, want 5", spans[1].Counters["levels"])
	}
	tree := tr.Tree()
	if !strings.Contains(tree, tr.ID().String()) || !strings.Contains(tree, "lstep") {
		t.Fatalf("Tree() missing pieces:\n%s", tree)
	}
}

func TestSpanCapAndConcurrency(t *testing.T) {
	tr := NewTrace()
	ctx := ContextWith(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < maxSpans; i++ {
				_, s := StartSpan(ctx, "fanout")
				s.Count("n", 1)
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if n := len(tr.Spans()); n != maxSpans {
		t.Fatalf("recorded %d spans, want cap %d", n, maxSpans)
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "Requests.", "endpoint", "/q", "code", "200")
	c.Add(3)
	r.Counter("reqs_total", "Requests.", "endpoint", "/q", "code", "200").Inc()
	g := r.Gauge("in_flight", "In flight.")
	g.Add(2)
	g.Add(-1)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1}, "endpoint", "/q")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.AddScrapeFunc(func(w io.Writer) { fmt.Fprintf(w, "extra 1\n") })

	var b bytes.Buffer
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total Requests.",
		"# TYPE reqs_total counter",
		`reqs_total{endpoint="/q",code="200"} 4`,
		"in_flight 1",
		`lat_seconds_bucket{endpoint="/q",le="0.1"} 1`,
		`lat_seconds_bucket{endpoint="/q",le="1"} 2`,
		`lat_seconds_bucket{endpoint="/q",le="+Inf"} 3`,
		`lat_seconds_sum{endpoint="/q"} 5.55`,
		`lat_seconds_count{endpoint="/q"} 3`,
		"extra 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	h := Default.Histogram("obs_test_seconds", "test", []float64{0.01, 0.1, 1})
	allocs := testing.AllocsPerRun(100, func() { h.Observe(0.02) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	a, b, c := NewTrace(), NewTrace(), NewTrace()
	r.Add(a)
	r.Add(b)
	if r.Get(a.ID()) != a || r.Get(b.ID()) != b {
		t.Fatal("ring lost a live trace")
	}
	r.Add(c)
	if r.Get(a.ID()) != nil {
		t.Fatal("oldest trace should be evicted")
	}
	if r.Get(b.ID()) != b || r.Get(c.ID()) != c {
		t.Fatal("ring lost a live trace after eviction")
	}
}

func TestLoggerQuery(t *testing.T) {
	var b bytes.Buffer
	l := NewLogger(&b, slog.LevelInfo, 50*time.Millisecond)
	id := NewTraceID()
	l.Query(id, "cluster", 5*time.Millisecond, "dataset", "points")
	l.Query(id, "cluster", 80*time.Millisecond)
	out := b.String()
	if !strings.Contains(out, id.String()) || !strings.Contains(out, "dataset=points") {
		t.Fatalf("log missing fields:\n%s", out)
	}
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "level=WARN") {
		t.Fatalf("slow query not escalated:\n%s", out)
	}

	// Nil logger: everything is a no-op.
	var nl *Logger
	nl.Info("x")
	nl.Query(id, "cluster", time.Second)
	nl.With("a", 1).Warn("y")
}
