package recconcave

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"privcluster/internal/dp"
)

func TestLogStar(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0.5, 0}, {1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4},
		{math.Pow(2, 40), 5}, {math.Pow(2, 60), 5},
	}
	for _, c := range cases {
		if got := LogStar(c.x); got != c.want {
			t.Errorf("LogStar(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestDepthShrinks(t *testing.T) {
	if d := Depth(16, 32); d != 1 {
		t.Errorf("Depth(16) = %d, want 1", d)
	}
	if d := Depth(1<<20, 32); d != 2 {
		t.Errorf("Depth(2^20) = %d, want 2", d)
	}
	d40 := Depth(1<<40, 32)
	if d40 != 3 {
		t.Errorf("Depth(2^40) = %d, want 3", d40)
	}
	if d := Depth(1<<62, 32); d < d40 || d > 4 {
		t.Errorf("Depth(2^62) = %d", d)
	}
	// With the default base size 64, any int64 domain is depth ≤ 2.
	if d := Depth(1<<62, 64); d != 2 {
		t.Errorf("Depth(2^62, base 64) = %d, want 2", d)
	}
}

func TestRequiredPromiseMonotone(t *testing.T) {
	p := dp.Params{Epsilon: 1, Delta: 1e-6}
	small := RequiredPromise(1<<10, 0.5, p, 0.1)
	big := RequiredPromise(1<<60, 0.5, p, 0.1)
	if small <= 0 || big <= small {
		t.Errorf("RequiredPromise not positive/monotone: %v vs %v", small, big)
	}
	// Halving epsilon doubles the requirement.
	half := RequiredPromise(1<<10, 0.5, dp.Params{Epsilon: 0.5, Delta: 1e-6}, 0.1)
	if math.Abs(half/small-2) > 1e-9 {
		t.Errorf("epsilon scaling wrong: %v vs %v", half, small)
	}
}

func defaultOpts() Options {
	return Options{
		Alpha:   0.5,
		Beta:    0.05,
		Privacy: dp.Params{Epsilon: 1, Delta: 1e-6},
	}
}

func TestSolveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := ConstStepFn(100, 1)
	ok := dp.Params{Epsilon: 1, Delta: 1e-6}
	bad := []Options{
		{Alpha: 0, Beta: 0.1, Privacy: ok},
		{Alpha: 1, Beta: 0.1, Privacy: ok},
		{Alpha: 0.5, Beta: 0, Privacy: ok},
		{Alpha: 0.5, Beta: 0.1, Privacy: dp.Params{Epsilon: 0, Delta: 1e-6}},
		{Alpha: 0.5, Beta: 0.1, Privacy: dp.Params{Epsilon: 1, Delta: 0}},
		{Alpha: 0.5, Beta: 0.1, Privacy: ok, BaseSize: 1},
	}
	for i, o := range bad {
		if _, err := Solve(rng, q, 10, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := Solve(rng, q, 0, defaultOpts()); err == nil {
		t.Error("non-positive promise accepted")
	}
}

func TestSolveBaseCasePicksGood(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Domain of 20 → base case (EM). Peak value 500 at f=7..9.
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = 1
	}
	vals[7], vals[8], vals[9] = 500, 500, 500
	q, err := FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		f, err := Solve(rng, q, 500, defaultOpts())
		if err != nil {
			t.Fatal(err)
		}
		if f >= 7 && f <= 9 {
			good++
		}
	}
	if good < 95 {
		t.Errorf("base case picked the peak only %d/%d times", good, trials)
	}
}

// buildRamp returns a quasi-concave step function over [0, n) that climbs to
// a plateau of value peak on [plateauLo, plateauHi) in a few pieces.
func buildRamp(n, plateauLo, plateauHi int64, peak float64) (*StepFn, error) {
	q1, q3 := plateauLo/2, plateauHi+(n-plateauHi)/2
	return NewStepFn(n,
		[]int64{0, q1, plateauLo, plateauHi, q3},
		[]float64{0, peak / 2, peak, peak / 2, 0})
}

func TestSolveLargeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := int64(1) << 40
	opts := defaultOpts()
	promise := RequiredPromise(n, opts.Alpha, opts.Privacy, opts.Beta)

	// Plateau of width 2^25 somewhere in the middle.
	lo := int64(1) << 33
	hi := lo + (1 << 25)
	q, err := buildRamp(n, lo, hi, promise)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsQuasiConcave() {
		t.Fatal("test function not quasi-concave")
	}

	good := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		f, err := Solve(rng, q, promise, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if q.Eval(f) >= (1-opts.Alpha)*promise {
			good++
		}
	}
	// Theorem 4.3 guarantee is 1−β with β=0.05; allow two bad trials.
	if good < trials-2 {
		t.Errorf("only %d/%d solutions met (1−α)p", good, trials)
	}
}

func TestSolveNarrowPlateauLargeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := int64(1) << 36
	opts := defaultOpts()
	// Force a depth-3 recursion (36+2 > 16) to exercise the general log*
	// chain rather than the depth-2 fast path of the default BaseSize.
	opts.BaseSize = 16
	promise := RequiredPromise(n, opts.Alpha, opts.Privacy, opts.Beta)
	// A single-point optimum with gentle quasi-concave slopes around it.
	lo := int64(77777777)
	q, err := buildRamp(n, lo, lo+1, promise)
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		f, err := Solve(rng, q, promise, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if q.Eval(f) >= (1-opts.Alpha)*promise {
			good++
		}
	}
	if good < trials-1 {
		t.Errorf("only %d/%d solutions met (1−α)p", good, trials)
	}
}

func TestSolvePromiseViolatedFails(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := int64(1) << 30
	opts := defaultOpts()
	promise := RequiredPromise(n, opts.Alpha, opts.Privacy, opts.Beta)
	// Quality identically zero but promise huge: the choosing step must
	// refuse (no block can clear the release threshold).
	q := ConstStepFn(n, 0)
	fails := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		if _, err := Solve(rng, q, promise, opts); err != nil {
			if !errors.Is(err, ErrPromiseViolated) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	if fails < trials-1 {
		t.Errorf("promise-violated input succeeded %d/%d times", trials-fails, trials)
	}
}

func TestSolveDeterministicWithSeed(t *testing.T) {
	opts := defaultOpts()
	n := int64(1) << 35
	promise := RequiredPromise(n, opts.Alpha, opts.Privacy, opts.Beta)
	q, err := buildRamp(n, 1<<30, (1<<30)+(1<<22), promise)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Solve(rand.New(rand.NewSource(42)), q, promise, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(rand.New(rand.NewSource(42)), q, promise, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %d and %d", a, b)
	}
}

func TestSolveWholeDomainGood(t *testing.T) {
	// Every solution meets the promise: any output is acceptable and Solve
	// must not error.
	rng := rand.New(rand.NewSource(6))
	n := int64(1) << 30
	opts := defaultOpts()
	promise := RequiredPromise(n, opts.Alpha, opts.Privacy, opts.Beta)
	q := ConstStepFn(n, promise*2)
	f, err := Solve(rng, q, promise, opts)
	if err != nil {
		t.Fatal(err)
	}
	if q.Eval(f) < (1-opts.Alpha)*promise {
		t.Error("output below target on an all-good domain")
	}
}
