package recconcave

import (
	"errors"
	"math/rand"
	"testing"

	"privcluster/internal/dp"
)

// chooseBlock edge-case coverage: the candidate enumeration around an
// empty/degenerate level region, block lengths exceeding the domain, and
// the MaxCandidateBlocks truncation path (previously untested — it silently
// drops candidates).

func testLevel() dp.Params { return dp.Params{Epsilon: 8, Delta: 0.1} }

// TestChooseBlockEmptyLevelRegion: no point exceeds the target (lo == hi in
// the degenerate sense — the super-level set is empty), so there are no
// candidates and the typed promise error must carry that fact.
func TestChooseBlockEmptyLevelRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := ConstStepFn(1024, 1.0)
	opt := Options{}
	opt.setDefaults()
	_, err := chooseBlock(rng, q, 8, 5.0 /* target above every value */, testLevel(), opt)
	if !errors.Is(err, ErrPromiseViolated) {
		t.Fatalf("err = %v, want promise violation", err)
	}
	var pe *PromiseError
	if !errors.As(err, &pe) {
		t.Fatalf("err is %T, want *PromiseError", err)
	}
	if pe.Candidates != 0 || pe.Scale != 8 {
		t.Errorf("PromiseError = %+v, want 0 candidates at scale 8", pe)
	}
	if pe.LevelEpsilon != testLevel().Epsilon || pe.LevelDelta != testLevel().Delta {
		t.Errorf("level budget not recorded: %+v", pe)
	}
}

// TestChooseBlockNarrowRegion: the super-level set is a single point
// (lo + 1 == hi), so no block of length > 1 fits inside it; the cascade to
// smaller block lengths must still find the length-1 block.
func TestChooseBlockNarrowRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q, err := NewStepFn(1024, []int64{0, 500, 501}, []float64{0, 1000, 0})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{}
	opt.setDefaults()
	f, err := chooseBlock(rng, q, 8, 1.0, testLevel(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if f != 500 {
		t.Errorf("narrow region selected %d, want 500", f)
	}
}

// TestChooseBlockBExceedsDomain: a block length far beyond N must neither
// panic nor index outside the domain; the b, b/2, b/4, b/8 cascade reaches
// a feasible length and the returned midpoint stays in [0, N).
func TestChooseBlockBExceedsDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := int64(64)
	q := ConstStepFn(n, 1000.0)
	opt := Options{}
	opt.setDefaults()
	f, err := chooseBlock(rng, q, 8*n, 1.0, testLevel(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0 || f >= n {
		t.Errorf("midpoint %d outside [0, %d)", f, n)
	}
}

// TestChooseBlockTruncationRecorded: with a wide plateau of qualifying
// blocks and a tiny MaxCandidateBlocks, the enumeration must stop at the
// cap — observable through PromiseError.Candidates when the (deliberately
// unreachable) release threshold rejects them all.
func TestChooseBlockTruncationRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := ConstStepFn(1<<20, 10.0)
	opt := Options{MaxCandidateBlocks: 3}
	opt.setDefaults()
	// Scores are 10 − 9.9 = 0.1 but the threshold at this level budget is
	// 1 + (4/ε)·ln(2/δ) ≫ 0.1 for ε = 0.1: every candidate is rejected and
	// the error reports how many were enumerated.
	level := dp.Params{Epsilon: 0.1, Delta: 1e-9}
	_, err := chooseBlock(rng, q, 4, 9.9, level, opt)
	var pe *PromiseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PromiseError", err)
	}
	if pe.Candidates != 3 {
		t.Errorf("enumerated %d candidates, want the cap 3 (truncation not applied)", pe.Candidates)
	}
}

// TestChooseBlockTruncatedSelectionStaysValid: truncation must not break a
// successful selection — the midpoint still lies in the qualifying region.
func TestChooseBlockTruncatedSelectionStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := int64(1 << 16)
	q, err := NewStepFn(n, []int64{0, 1000, 60000}, []float64{0, 1000, 0})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{MaxCandidateBlocks: 2}
	opt.setDefaults()
	f, err := chooseBlock(rng, q, 64, 1.0, testLevel(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Eval(f) <= 1.0 {
		t.Errorf("truncated selection returned f=%d with Q=%v ≤ target", f, q.Eval(f))
	}
}

// TestPromiseErrorSolveStamping: a full Solve that fails must surface a
// PromiseError stamped with the top-level promise and depth.
func TestPromiseErrorSolveStamping(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := ConstStepFn(1<<20, 0.5) // flat, far below any promise
	opts := Options{Alpha: 0.5, Beta: 0.1, Privacy: dp.Params{Epsilon: 1, Delta: 1e-6}}
	promise := 1e6
	_, err := Solve(rng, q, promise, opts)
	if err == nil {
		t.Fatal("flat quality met an enormous promise")
	}
	var pe *PromiseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PromiseError", err)
	}
	if pe.Promise != promise {
		t.Errorf("stamped promise %v, want %v", pe.Promise, promise)
	}
	if want := Depth(q.N(), DefaultBaseSize); pe.Depth != want {
		t.Errorf("stamped depth %d, want %d", pe.Depth, want)
	}
	if !errors.Is(err, ErrPromiseViolated) {
		t.Error("PromiseError does not unwrap to ErrPromiseViolated")
	}
}
