package recconcave

import (
	"math"
	"math/rand"
	"testing"
)

func mustStep(t *testing.T, n int64, breaks []int64, vals []float64) *StepFn {
	t.Helper()
	s, err := NewStepFn(n, breaks, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStepFnValidation(t *testing.T) {
	cases := []struct {
		name   string
		n      int64
		breaks []int64
		vals   []float64
	}{
		{"zero domain", 0, []int64{0}, []float64{1}},
		{"empty", 10, nil, nil},
		{"len mismatch", 10, []int64{0}, []float64{1, 2}},
		{"first break nonzero", 10, []int64{1}, []float64{1}},
		{"not increasing", 10, []int64{0, 5, 5}, []float64{1, 2, 3}},
		{"break outside", 10, []int64{0, 10}, []float64{1, 2}},
		{"nan value", 10, []int64{0}, []float64{math.NaN()}},
	}
	for _, c := range cases {
		if _, err := NewStepFn(c.n, c.breaks, c.vals); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestEvalPieces(t *testing.T) {
	s := mustStep(t, 10, []int64{0, 3, 7}, []float64{1, 5, 2})
	want := []float64{1, 1, 1, 5, 5, 5, 5, 2, 2, 2}
	for f := int64(0); f < 10; f++ {
		if got := s.Eval(f); got != want[f] {
			t.Errorf("Eval(%d) = %v, want %v", f, got, want[f])
		}
	}
}

func TestEvalPanicsOutside(t *testing.T) {
	s := ConstStepFn(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Eval(5) on domain [0,5) did not panic")
		}
	}()
	s.Eval(5)
}

func TestMaxMin(t *testing.T) {
	s := mustStep(t, 10, []int64{0, 3, 7}, []float64{1, 5, 2})
	if s.Max() != 5 || s.Min() != 1 {
		t.Errorf("Max/Min = %v/%v", s.Max(), s.Min())
	}
}

func TestFromValuesCompacts(t *testing.T) {
	s, err := FromValues([]float64{1, 1, 2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pieces() != 3 {
		t.Errorf("Pieces = %d, want 3", s.Pieces())
	}
	if s.Eval(0) != 1 || s.Eval(2) != 2 || s.Eval(5) != 1 {
		t.Error("FromValues evaluation mismatch")
	}
	if _, err := FromValues(nil); err == nil {
		t.Error("FromValues(nil) succeeded")
	}
}

// bruteWindowMinMax computes L(w) directly for small domains.
func bruteWindowMinMax(s *StepFn, w int64) float64 {
	if w >= s.N() {
		return s.Min()
	}
	best := math.Inf(-1)
	for x := int64(0); x+w <= s.N(); x++ {
		m := math.Inf(1)
		for f := x; f < x+w; f++ {
			if v := s.Eval(f); v < m {
				m = v
			}
		}
		if m > best {
			best = m
		}
	}
	return best
}

func TestWindowMinMaxAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := int64(5 + rng.Intn(60))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(8))
		}
		s, err := FromValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		for w := int64(1); w <= n+2; w++ {
			got := s.WindowMinMax(w)
			want := bruteWindowMinMax(s, w)
			if got != want {
				t.Fatalf("trial %d: WindowMinMax(n=%d, w=%d) = %v, want %v (vals=%v)",
					trial, n, w, got, want, vals)
			}
		}
	}
}

func TestWindowMinMaxLargeDomainSparsePieces(t *testing.T) {
	// Domain of size 2^40 with a narrow high plateau.
	n := int64(1) << 40
	s := mustStep(t, n, []int64{0, 1 << 20, 1<<20 + 1000}, []float64{0, 10, 0})
	if got := s.WindowMinMax(1000); got != 10 {
		t.Errorf("WindowMinMax(1000) = %v, want 10", got)
	}
	if got := s.WindowMinMax(1001); got != 0 {
		t.Errorf("WindowMinMax(1001) = %v, want 0", got)
	}
	if got := s.WindowMinMax(n); got != 0 {
		t.Errorf("WindowMinMax(full) = %v, want 0", got)
	}
}

func TestWindowMinMaxPanicsOnBadWidth(t *testing.T) {
	s := ConstStepFn(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("WindowMinMax(0) did not panic")
		}
	}()
	s.WindowMinMax(0)
}

func TestBlockMin(t *testing.T) {
	s := mustStep(t, 12, []int64{0, 3, 7}, []float64{1, 5, 2})
	// Blocks of width 4: [0,4): min(1,5)=1; [4,8): min(5,2)=2; [8,12): 2.
	if got := s.BlockMin(0, 4); got != 1 {
		t.Errorf("BlockMin(0,4) = %v", got)
	}
	if got := s.BlockMin(1, 4); got != 2 {
		t.Errorf("BlockMin(1,4) = %v", got)
	}
	if got := s.BlockMin(2, 4); got != 2 {
		t.Errorf("BlockMin(2,4) = %v", got)
	}
	// Truncated final block.
	if got := s.BlockMin(1, 7); got != 2 {
		t.Errorf("BlockMin(1,7) = %v", got)
	}
}

func TestBlockMinPanicsOutside(t *testing.T) {
	s := ConstStepFn(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("BlockMin outside domain did not panic")
		}
	}()
	s.BlockMin(2, 4)
}

func TestLevelRegion(t *testing.T) {
	s := mustStep(t, 20, []int64{0, 5, 12}, []float64{0, 7, 0})
	lo, hi, ok := s.LevelRegion(3)
	if !ok || lo != 5 || hi != 12 {
		t.Errorf("LevelRegion = (%d,%d,%v), want (5,12,true)", lo, hi, ok)
	}
	if _, _, ok := s.LevelRegion(10); ok {
		t.Error("LevelRegion above max reported ok")
	}
	// Threshold below everything: whole domain.
	lo, hi, ok = s.LevelRegion(-1)
	if !ok || lo != 0 || hi != 20 {
		t.Errorf("LevelRegion(-1) = (%d,%d,%v)", lo, hi, ok)
	}
}

func TestIsQuasiConcave(t *testing.T) {
	qc := [][]float64{
		{1, 2, 3, 3, 2},
		{5},
		{1, 1, 1},
		{3, 2, 1},
		{1, 2, 3},
	}
	for _, vals := range qc {
		s, _ := FromValues(vals)
		if !s.IsQuasiConcave() {
			t.Errorf("%v reported not quasi-concave", vals)
		}
	}
	notQC := [][]float64{
		{1, 3, 2, 3},
		{2, 1, 2},
		{3, 1, 3, 1},
	}
	for _, vals := range notQC {
		s, _ := FromValues(vals)
		if s.IsQuasiConcave() {
			t.Errorf("%v reported quasi-concave", vals)
		}
	}
}
