package recconcave

import (
	"math/rand"
	"testing"
	"testing/quick"

	"privcluster/internal/dp"
)

func TestConstStepFn(t *testing.T) {
	s := ConstStepFn(100, 7)
	if s.N() != 100 || s.Pieces() != 1 {
		t.Fatalf("N=%d pieces=%d", s.N(), s.Pieces())
	}
	if s.Eval(0) != 7 || s.Eval(99) != 7 {
		t.Error("const eval wrong")
	}
	if s.Max() != 7 || s.Min() != 7 {
		t.Error("const max/min wrong")
	}
	if s.WindowMinMax(10) != 7 {
		t.Error("const window wrong")
	}
}

func TestMaxCandidateBlocksCap(t *testing.T) {
	// A very wide plateau at a tiny block scale produces many candidate
	// blocks; the cap must bound the enumeration without breaking Solve.
	rng := rand.New(rand.NewSource(1))
	n := int64(1) << 22
	opts := Options{
		Alpha:              0.5,
		Beta:               0.1,
		Privacy:            dp.Params{Epsilon: 2, Delta: 0.01},
		MaxCandidateBlocks: 8,
	}
	promise := RequiredPromise(n, opts.Alpha, opts.Privacy, opts.Beta)
	q, err := buildRampForTest(n, n/4, 3*n/4, promise)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Solve(rng, q, promise, opts)
	if err != nil {
		t.Fatal(err)
	}
	if q.Eval(f) < promise/2 {
		t.Errorf("capped solve returned quality %v < %v", q.Eval(f), promise/2)
	}
}

func buildRampForTest(n, lo, hi int64, peak float64) (*StepFn, error) {
	return NewStepFn(n,
		[]int64{0, lo / 2, lo, hi, hi + (n-hi)/2},
		[]float64{0, peak / 2, peak, peak / 2, 0})
}

// Property: WindowMinMax is non-increasing in the window width (a wider
// window can only lower its guaranteed minimum).
func TestWindowMinMaxMonotoneInWidth(t *testing.T) {
	f := func(raw [12]uint8, w1, w2 uint8) bool {
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v % 16)
		}
		s, err := FromValues(vals)
		if err != nil {
			return false
		}
		a := int64(w1%12) + 1
		b := int64(w2%12) + 1
		if a > b {
			a, b = b, a
		}
		return s.WindowMinMax(a) >= s.WindowMinMax(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Eval agrees with FromValues's inputs.
func TestFromValuesEvalRoundTrip(t *testing.T) {
	f := func(raw [20]uint8) bool {
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v % 8)
		}
		s, err := FromValues(vals)
		if err != nil {
			return false
		}
		for i, v := range vals {
			if s.Eval(int64(i)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a returned solution always lies in the domain.
func TestSolveStaysInDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	opts := Options{Alpha: 0.5, Beta: 0.1, Privacy: dp.Params{Epsilon: 4, Delta: 0.05}}
	for trial := 0; trial < 20; trial++ {
		n := int64(2 + rng.Intn(1000))
		vals := make([]float64, min(int(n), 64))
		for i := range vals {
			vals[i] = float64(rng.Intn(100))
		}
		q, err := FromValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Solve(rng, q, 1, opts)
		if err != nil {
			continue // promise may genuinely fail; only domain safety is asserted
		}
		if f < 0 || f >= q.N() {
			t.Fatalf("solution %d outside [0, %d)", f, q.N())
		}
	}
}
