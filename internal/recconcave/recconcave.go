package recconcave

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/dp"
	"privcluster/internal/noise"
)

// Options configures a RecConcave invocation.
type Options struct {
	// Alpha is the approximation parameter: the returned solution satisfies
	// Q(f) ≥ (1−Alpha)·promise. Must lie in (0, 1). GoodRadius uses 1/2.
	Alpha float64
	// Beta is the failure probability target.
	Beta float64
	// Privacy is the total (ε, δ) budget for the entire recursion.
	Privacy dp.Params
	// Ctx, when non-nil, is checked at every recursion level: a cancelled
	// context aborts the solve with ctx.Err(). Noise drawn before the
	// cancellation point has been consumed from the rng stream, so callers
	// should treat an aborted solve as having spent its budget.
	Ctx context.Context
	// BaseSize is the domain size at which the recursion bottoms out into a
	// direct exponential-mechanism selection. Defaults to 64, which makes
	// the recursion depth exactly 2 for every domain representable in an
	// int64 (the scale domain ⌈log₂N⌉+1 ≤ 64 is then a base case); smaller
	// values force deeper recursions and exercise the general log* chain.
	BaseSize int64
	// MaxCandidateBlocks caps how many candidate blocks the per-level
	// choosing step enumerates. At a correctly selected scale the candidate
	// run is provably short (a handful of blocks); the cap only guards
	// against pathological non-quasi-concave inputs. Defaults to 4096.
	MaxCandidateBlocks int
}

// DefaultBaseSize is the default recursion base size (see Options.BaseSize).
// Exported so feasibility analyses (core.Params.MinFeasibleT) can reproduce
// the recursion depth — and with it the per-level budget — of a default
// Solve.
const DefaultBaseSize = 64

func (o *Options) setDefaults() {
	if o.BaseSize == 0 {
		o.BaseSize = DefaultBaseSize
	}
	if o.MaxCandidateBlocks == 0 {
		o.MaxCandidateBlocks = 4096
	}
}

func (o *Options) validate() error {
	if o.Alpha <= 0 || o.Alpha >= 1 || math.IsNaN(o.Alpha) {
		return fmt.Errorf("recconcave: alpha must be in (0,1), got %v", o.Alpha)
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		return fmt.Errorf("recconcave: beta must be in (0,1), got %v", o.Beta)
	}
	if err := o.Privacy.Validate(); err != nil {
		return err
	}
	if o.Privacy.Delta <= 0 {
		return errors.New("recconcave: delta must be positive (the choosing step is (ε,δ)-DP)")
	}
	if o.BaseSize < 2 {
		return fmt.Errorf("recconcave: base size must be ≥ 2, got %d", o.BaseSize)
	}
	return nil
}

// ErrPromiseViolated is returned when an internal private selection fails in
// a way that (with probability ≥ 1−β) only happens when the promise did not
// hold — the quality was not quasi-concave or no solution reached it.
// Concrete failures are *PromiseError values wrapping this sentinel, so
// errors.Is(err, ErrPromiseViolated) keeps working.
var ErrPromiseViolated = errors.New("recconcave: no solution met the quality promise (promise violated or unlucky noise)")

// PromiseError is the typed form of a promise failure: it carries the
// regime that caused the block-choosing release to miss its threshold, so a
// caller can distinguish "no solution exists" from "this t/ε/β regime is
// infeasible" and report which knob to turn. Solve fills the top-level
// fields; GoodRadius enriches T, Gamma and Slack with its own regime.
type PromiseError struct {
	// Promise is the quality promise the solve was asked to certify
	// (GoodRadius passes its Γ).
	Promise float64
	// Depth is the recursion depth of the whole solve; the (ε, δ) budget is
	// split evenly across levels.
	Depth int
	// LevelEpsilon, LevelDelta are the per-level budget of the failing
	// choosing step; its release threshold is 1 + (4/LevelEpsilon)·ln(2/LevelDelta).
	LevelEpsilon float64
	LevelDelta   float64
	// Scale is the aligned-block length B at the failing choosing step.
	Scale int64
	// Candidates is how many candidate blocks were enumerated (possibly
	// truncated at Options.MaxCandidateBlocks).
	Candidates int

	// The caller's regime, filled by GoodRadius (zero when unset):
	// T is the target cluster size, Gamma the promise Γ of the radius
	// search, and Slack = t − 4Γ the cluster-size headroom Lemma 3.6
	// consumes. A small or negative slack means the regime itself — not the
	// data — made the search fail.
	T     int
	Gamma float64
	Slack float64
}

func (e *PromiseError) Error() string {
	msg := fmt.Sprintf(
		"recconcave: no solution met the quality promise %.4g (depth %d, per-level ε=%.4g δ=%.3g, scale B=%d, %d candidate blocks)",
		e.Promise, e.Depth, e.LevelEpsilon, e.LevelDelta, e.Scale, e.Candidates)
	if e.T > 0 {
		msg += fmt.Sprintf(
			"; t=%d against Γ=%.4g leaves slack t−4Γ=%.4g — when t is within a small factor of Γ the search is infeasible regardless of the data: raise t or ε, or relax β/δ",
			e.T, e.Gamma, e.Slack)
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrPromiseViolated) hold for PromiseError.
func (e *PromiseError) Unwrap() error { return ErrPromiseViolated }

// LogStar returns log*₂(x): the number of times log₂ must be iterated,
// starting from x, until the value drops to at most 1.
func LogStar(x float64) int {
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
	}
	return n
}

// Depth returns the number of recursion levels Solve will use for a domain
// of the given size (each level shrinks N to ⌈log₂N⌉+2 until BaseSize).
func Depth(n, baseSize int64) int {
	d := 1
	for n > baseSize {
		n = int64(math.Ceil(math.Log2(float64(n)))) + 2
		d++
		if d > 64 { // unreachable for int64 domains; defensive
			break
		}
	}
	return d
}

// RequiredPromise returns the quality promise Theorem 4.3 demands:
//
//	8^{log* N} · (36·log* N / (α·ε)) · log(12·log* N / (β·δ)).
//
// GoodRadius's Γ is this expression with its own parameter substitutions.
func RequiredPromise(n int64, alpha float64, p dp.Params, beta float64) float64 {
	ls := float64(LogStar(float64(n)))
	if ls < 1 {
		ls = 1
	}
	return math.Pow(8, ls) * (36 * ls / (alpha * p.Epsilon)) *
		math.Log(12*ls/(beta*p.Delta))
}

// Solve privately selects f ∈ [0, N) with Q(f) ≥ (1−α)·promise, given that
// Q (supplied as a step function) is quasi-concave with max ≥ promise.
// See the package comment for the guarantee and cost discussion.
func Solve(rng *rand.Rand, q *StepFn, promise float64, opt Options) (int64, error) {
	opt.setDefaults()
	if err := opt.validate(); err != nil {
		return 0, err
	}
	if promise <= 0 {
		return 0, fmt.Errorf("recconcave: promise must be positive, got %v", promise)
	}
	depth := Depth(q.N(), opt.BaseSize)
	// Split the privacy budget evenly across levels (basic composition,
	// Theorem 2.1): each level performs exactly one private selection.
	level := dp.Params{
		Epsilon: opt.Privacy.Epsilon / float64(depth),
		Delta:   opt.Privacy.Delta / float64(depth),
	}
	betaLevel := opt.Beta / float64(depth)
	f, err := solve(rng, q, promise, opt.Alpha, level, betaLevel, opt)
	if err != nil {
		// The failing choosing step may sit at any recursion level; stamp
		// the top-level context on the way out.
		var pe *PromiseError
		if errors.As(err, &pe) {
			pe.Promise = promise
			pe.Depth = depth
		}
	}
	return f, err
}

// solve is one recursion level. level is the per-level privacy budget.
func solve(rng *rand.Rand, q *StepFn, promise, alpha float64, level dp.Params, beta float64, opt Options) (int64, error) {
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return 0, err
		}
	}
	n := q.N()
	if n <= opt.BaseSize {
		return baseCase(rng, q, level.Epsilon)
	}

	// ---- Scale search -------------------------------------------------
	// T = ⌈log₂ N⌉; for j ∈ {0..T} let L(j) = max over length-2^j windows
	// of the window minimum of Q. L is non-increasing with L(0) = max Q ≥ p.
	//
	// With γ = α·p/8 define the level quality
	//
	//	q₂(j) = min{ L(j) − (1−α)p − 2γ , (1−α)p + 6γ − L(j+1) }
	//
	// (second term +∞ at j = T). q₂ is quasi-concave (min of a
	// non-increasing and a non-decreasing sequence) and has sensitivity 1
	// (each term is a ±constant shift of a max-of-min of sensitivity-1
	// values). Taking j* = the largest j with L(j) ≥ (1−α)p + 4γ gives
	// q₂(j*) ≥ 2γ, so the recursion promise is 2γ = α·p/4.
	gamma := alpha * promise / 8
	target := (1 - alpha) * promise

	T := int64(math.Ceil(math.Log2(float64(n))))
	L := make([]float64, T+2)
	for j := int64(0); j <= T; j++ {
		w := int64(1) << uint(j)
		if w >= n || w <= 0 { // w<=0 guards shift overflow
			w = n
		}
		L[j] = q.WindowMinMax(w)
	}
	L[T+1] = math.Inf(-1)

	q2vals := make([]float64, T+1)
	for j := int64(0); j <= T; j++ {
		first := L[j] - target - 2*gamma
		second := target + 6*gamma - L[j+1]
		q2vals[j] = math.Min(first, second)
	}
	q2, err := FromValues(q2vals)
	if err != nil {
		return 0, err
	}
	j, err := solve(rng, q2, 2*gamma, 0.5, level, beta, opt)
	if err != nil {
		return 0, err
	}

	// ---- Resolve the scale to a concrete solution ---------------------
	// With probability ≥ 1−β the recursion returned j with q₂(j) ≥ γ, i.e.
	//
	//	(a) some window of length 2^j has window-min ≥ (1−α)p + 3γ, and
	//	(b) every window of length 2^{j+1} has window-min ≤ (1−α)p + 5γ.
	//
	// Any window of length 2W contains an aligned block of length W, so by
	// (a) some aligned block of length B = max(1, 2^{j−1}) has block-min
	// ≥ (1−α)p + 3γ. We privately choose a high block via a stability-style
	// noisy argmax over the blocks whose min exceeds the target; by (b) and
	// quasi-concavity the qualifying blocks form a short contiguous run.
	// Every point of the chosen block has Q ≥ (1−α)p, so the block midpoint
	// is a valid output.
	var B int64 = 1
	if j >= 1 {
		B = int64(1) << uint(j-1)
	}
	if B > n {
		B = n
	}
	return chooseBlock(rng, q, B, target, level, opt)
}

// baseCase selects f from a small domain via the exponential mechanism.
func baseCase(rng *rand.Rand, q *StepFn, epsilon float64) (int64, error) {
	n := q.N()
	scores := make([]float64, n)
	for f := int64(0); f < n; f++ {
		scores[f] = q.Eval(f)
	}
	idx, err := dp.ExponentialMechanism(rng, scores, 1, epsilon)
	if err != nil {
		return 0, err
	}
	return int64(idx), nil
}

// chooseBlock privately picks an aligned block whose block-min exceeds
// target and returns the block midpoint. The selection is a stability-style
// noisy argmax with a release threshold, mirroring the choosing mechanism of
// BNS'13: block scores have sensitivity 1, blocks that switch from
// non-positive to positive between neighboring datasets have score ≤ 1, and
// the threshold makes releasing such a block a δ-probability event. For
// quasi-concave Q the positive blocks form one contiguous run (the
// super-level set of Q is an interval), so the growth between neighboring
// datasets is bounded by the run-length change.
//
// Candidates are enumerated at block lengths B, B/2, B/4 and B/8 (one joint
// selection, still a single (ε, δ) release): the scale search returns B one
// level of noise away from optimal, and including finer scales keeps a
// fully-contained high block in the candidate set when the noisy scale
// overshot. Undershoot is harmless — smaller blocks fit inside the good
// window even more easily.
func chooseBlock(rng *rand.Rand, q *StepFn, B int64, target float64, level dp.Params, opt Options) (int64, error) {
	n := q.N()
	lo, hi, ok := q.LevelRegion(target)
	type cand struct {
		k, b  int64
		score float64
	}
	var cands []cand
	if ok {
		seen := make(map[int64]struct{}, 4)
		for b := B; b >= 1; b /= 2 {
			if _, dup := seen[b]; dup {
				break
			}
			seen[b] = struct{}{}
			kLo := (lo + b - 1) / b // first block fully inside [lo, hi)
			kHi := hi/b - 1         // last block fully inside
			if kHi >= (n-1)/b {
				kHi = (n - 1) / b
			}
			for k := kLo; k <= kHi && len(cands) < opt.MaxCandidateBlocks; k++ {
				s := q.BlockMin(k, b) - target
				if s > 0 {
					cands = append(cands, cand{k, b, s})
				}
			}
			if len(seen) == 4 || b == 1 {
				break
			}
		}
	}
	// Release threshold: newly-positive blocks have score ≤ 1; the Laplace
	// tail beyond threshold−1 bounds the probability a spurious block is
	// released, which is absorbed into δ.
	lam := 4 / level.Epsilon
	thresh := 1 + lam*math.Log(2/level.Delta)
	var best cand
	bestNoisy := math.Inf(-1)
	for _, c := range cands {
		v := c.score + noise.Laplace(rng, lam)
		if v > bestNoisy {
			bestNoisy = v
			best = c
		}
	}
	if bestNoisy == math.Inf(-1) || bestNoisy < thresh {
		return 0, &PromiseError{
			Scale:        B,
			Candidates:   len(cands),
			LevelEpsilon: level.Epsilon,
			LevelDelta:   level.Delta,
		}
	}
	mid := best.k*best.b + best.b/2
	if mid >= n {
		mid = n - 1
	}
	return mid, nil
}
