// Package recconcave implements Algorithm RecConcave of Beimel, Nissim and
// Stemmer (APPROX-RANDOM 2013), the private solver for quasi-concave promise
// problems stated as Theorem 4.3 in "Locating a Small Cluster Privately".
//
// Given a finite totally ordered solution set F (represented as indices
// 0..N−1), a sensitivity-1 quality function Q that is quasi-concave over F,
// and a quality promise p with max_f Q(f) ≥ p, RecConcave privately returns
// a solution f with Q(f) ≥ (1−α)p, paying only 2^{O(log* N)}·(1/ε)·log(1/βδ)
// in required promise — instead of the log N an exponential-mechanism binary
// search would cost. This is the source of the paper's 2^{O(log*|X|)}
// dependence.
//
// The solution domain may be astronomically large (GoodRadius uses the
// radius grid of size ≈ 2|X|√d, with |X| up to 2^60), so Q is supplied as an
// explicit step function: a sorted list of breakpoints and piece values.
// This is exactly the efficiency condition of Remark 4.4 — for GoodRadius
// the pieces are delimited by the O(n²) pairwise distances.
package recconcave

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// StepFn is a piecewise-constant function over the integer domain [0, N).
// Piece i covers [breaks[i], breaks[i+1]) (with an implicit final boundary
// at N) and has value vals[i]. breaks[0] is always 0.
type StepFn struct {
	n      int64
	breaks []int64
	vals   []float64
}

// NewStepFn validates and builds a step function over [0, n).
// breaks must be strictly increasing, start at 0 and stay below n;
// len(vals) == len(breaks).
func NewStepFn(n int64, breaks []int64, vals []float64) (*StepFn, error) {
	if n <= 0 {
		return nil, fmt.Errorf("recconcave: domain size must be positive, got %d", n)
	}
	if len(breaks) == 0 || len(breaks) != len(vals) {
		return nil, fmt.Errorf("recconcave: need matching non-empty breaks/vals, got %d/%d", len(breaks), len(vals))
	}
	if breaks[0] != 0 {
		return nil, fmt.Errorf("recconcave: first break must be 0, got %d", breaks[0])
	}
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			return nil, fmt.Errorf("recconcave: breaks not strictly increasing at %d", i)
		}
	}
	if breaks[len(breaks)-1] >= n {
		return nil, fmt.Errorf("recconcave: break %d outside domain [0,%d)", breaks[len(breaks)-1], n)
	}
	for _, v := range vals {
		if math.IsNaN(v) {
			return nil, errors.New("recconcave: NaN piece value")
		}
	}
	return &StepFn{n: n, breaks: breaks, vals: vals}, nil
}

// ConstStepFn returns the constant function v over [0, n).
func ConstStepFn(n int64, v float64) *StepFn {
	return &StepFn{n: n, breaks: []int64{0}, vals: []float64{v}}
}

// FromValues builds a step function from one explicit value per domain point
// (convenient for small domains such as the recursion's scale domain).
func FromValues(vals []float64) (*StepFn, error) {
	if len(vals) == 0 {
		return nil, errors.New("recconcave: FromValues with no values")
	}
	breaks := make([]int64, 0, len(vals))
	compact := make([]float64, 0, len(vals))
	for i, v := range vals {
		if i == 0 || v != compact[len(compact)-1] {
			breaks = append(breaks, int64(i))
			compact = append(compact, v)
		}
	}
	return NewStepFn(int64(len(vals)), breaks, compact)
}

// N returns the domain size.
func (s *StepFn) N() int64 { return s.n }

// Pieces returns the number of constant pieces.
func (s *StepFn) Pieces() int { return len(s.breaks) }

// pieceEnd returns the exclusive end of piece i.
func (s *StepFn) pieceEnd(i int) int64 {
	if i+1 < len(s.breaks) {
		return s.breaks[i+1]
	}
	return s.n
}

// Eval returns Q(f). It panics for f outside [0, N) (programming error).
func (s *StepFn) Eval(f int64) float64 {
	if f < 0 || f >= s.n {
		panic(fmt.Sprintf("recconcave: Eval(%d) outside [0,%d)", f, s.n))
	}
	// Largest break ≤ f.
	i := sort.Search(len(s.breaks), func(i int) bool { return s.breaks[i] > f }) - 1
	return s.vals[i]
}

// Max returns the maximum piece value.
func (s *StepFn) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum piece value.
func (s *StepFn) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.vals {
		if v < m {
			m = v
		}
	}
	return m
}

// WindowMinMax returns L(w) = max over windows [x, x+w) ⊆ [0, N) of
// (min over the window of Q), i.e. the best guaranteed quality achievable by
// an interval of length w. For w ≥ N it returns the global minimum, and it
// panics for w ≤ 0.
//
// It runs in O(Pieces) using a monotone deque over piece values: the window
// min changes only when a window edge crosses a breakpoint, so it suffices
// to evaluate windows whose start sits at a piece boundary or whose end sits
// at a piece boundary.
func (s *StepFn) WindowMinMax(w int64) float64 {
	if w <= 0 {
		panic("recconcave: WindowMinMax with non-positive width")
	}
	if w >= s.n {
		return s.Min()
	}
	// Candidate window starts: piece starts, and (piece ends − w), clamped
	// to [0, N−w]. Dedup via merge of two sorted streams.
	m := len(s.breaks)
	cands := make([]int64, 0, 2*m+1)
	for i := 0; i < m; i++ {
		cands = append(cands, s.breaks[i])
	}
	for i := 0; i < m; i++ {
		e := s.pieceEnd(i) - w
		if e >= 0 {
			cands = append(cands, e)
		}
	}
	cands = append(cands, 0, s.n-w)
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	best := math.Inf(-1)
	// Monotone deque of piece indices with increasing values; lo..hi are the
	// pieces currently intersecting the window.
	deque := make([]int, 0, m)
	lo, hi := 0, -1
	prev := int64(-1)
	for _, x := range cands {
		if x == prev || x < 0 || x > s.n-w {
			continue
		}
		prev = x
		// Advance hi: include pieces with start < x+w.
		for hi+1 < m && s.breaks[hi+1] < x+w {
			hi++
			v := s.vals[hi]
			for len(deque) > 0 && s.vals[deque[len(deque)-1]] >= v {
				deque = deque[:len(deque)-1]
			}
			deque = append(deque, hi)
		}
		// Advance lo: drop pieces with end ≤ x.
		for lo < m && s.pieceEnd(lo) <= x {
			if len(deque) > 0 && deque[0] == lo {
				deque = deque[1:]
			}
			lo++
		}
		if len(deque) > 0 {
			if v := s.vals[deque[0]]; v > best {
				best = v
			}
		}
	}
	return best
}

// BlockMin returns min over the aligned block [k·w, min((k+1)·w, N)) of Q.
// It panics when the block does not intersect the domain.
func (s *StepFn) BlockMin(k, w int64) float64 {
	lo := k * w
	hi := lo + w
	if hi > s.n {
		hi = s.n
	}
	if w <= 0 || lo < 0 || lo >= s.n {
		panic(fmt.Sprintf("recconcave: BlockMin(%d,%d) outside domain of size %d", k, w, s.n))
	}
	i := sort.Search(len(s.breaks), func(i int) bool { return s.breaks[i] > lo }) - 1
	minV := math.Inf(1)
	for ; i < len(s.breaks) && s.breaks[i] < hi; i++ {
		if s.vals[i] < minV {
			minV = s.vals[i]
		}
	}
	return minV
}

// LevelRegion returns the maximal contiguous region [lo, hi) on which
// Q > theta, assuming Q is quasi-concave (so the super-level set is an
// interval). ok is false when no point exceeds theta.
func (s *StepFn) LevelRegion(theta float64) (lo, hi int64, ok bool) {
	first, last := -1, -1
	for i, v := range s.vals {
		if v > theta {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	return s.breaks[first], s.pieceEnd(last), true
}

// IsQuasiConcave reports whether the piece values rise to a peak and then
// fall (the defining property Definition 4.1 requires). Used by tests and by
// debug assertions; O(Pieces).
func (s *StepFn) IsQuasiConcave() bool {
	// Find a peak index, then verify non-decreasing before and
	// non-increasing after.
	peak := 0
	for i, v := range s.vals {
		if v > s.vals[peak] {
			peak = i
		}
	}
	for i := 1; i <= peak; i++ {
		if s.vals[i] < s.vals[i-1] {
			return false
		}
	}
	for i := peak + 1; i < len(s.vals); i++ {
		if s.vals[i] > s.vals[i-1] {
			return false
		}
	}
	return true
}
