// Package dp implements the differential-privacy substrate the 1-cluster
// algorithms are built from:
//
//   - privacy parameters (ε, δ) and composition accounting — basic
//     (Theorem 2.1) and advanced (Theorem 4.7, Dwork–Rothblum–Vadhan);
//   - the Laplace mechanism for low-L1-sensitivity queries (Theorem 2.3);
//   - the Gaussian mechanism for low-L2-sensitivity queries (Theorem 2.4);
//   - the exponential mechanism of McSherry–Talwar for private selection;
//   - report-noisy-max, the standard selection alternative;
//   - NoisyAverage (Algorithm 5, Appendix A): the private average of a
//     bounded-diameter set of vectors with only an additive Gaussian error.
//
// Every mechanism takes an explicit *rand.Rand for reproducibility.
package dp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/noise"
	"privcluster/internal/vec"
)

// Params carries an (ε, δ) differential-privacy guarantee or budget.
// δ = 0 denotes pure differential privacy.
type Params struct {
	Epsilon float64
	Delta   float64
}

// Validate returns an error unless ε > 0 and δ ∈ [0, 1).
func (p Params) Validate() error {
	if p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) {
		return fmt.Errorf("dp: epsilon must be positive and finite, got %v", p.Epsilon)
	}
	if p.Delta < 0 || p.Delta >= 1 || math.IsNaN(p.Delta) {
		return fmt.Errorf("dp: delta must be in [0,1), got %v", p.Delta)
	}
	return nil
}

func (p Params) String() string {
	return fmt.Sprintf("(ε=%g, δ=%g)-DP", p.Epsilon, p.Delta)
}

// Split divides the budget evenly into k parts under basic composition:
// running k mechanisms each (ε/k, δ/k)-DP yields (ε, δ)-DP (Theorem 2.1).
func (p Params) Split(k int) Params {
	if k <= 0 {
		panic("dp: Split with non-positive k")
	}
	return Params{Epsilon: p.Epsilon / float64(k), Delta: p.Delta / float64(k)}
}

// Scale returns the budget multiplied by c on both coordinates.
func (p Params) Scale(c float64) Params {
	return Params{Epsilon: p.Epsilon * c, Delta: p.Delta * c}
}

// ComposeBasic returns the guarantee of running all the given mechanisms
// adaptively: (Σεᵢ, Σδᵢ)-DP (Theorem 2.1, [6, 7]).
func ComposeBasic(ps ...Params) Params {
	var out Params
	for _, p := range ps {
		out.Epsilon += p.Epsilon
		out.Delta += p.Delta
	}
	return out
}

// ComposeAdvanced returns the guarantee of k adaptive uses of an (ε, δ)-DP
// mechanism under advanced composition (Theorem 4.7, [11]):
// (2kε² + ε·sqrt(2k·ln(1/δ')), kδ + δ')-DP.
func ComposeAdvanced(p Params, k int, deltaPrime float64) Params {
	if k <= 0 {
		panic("dp: ComposeAdvanced with non-positive k")
	}
	if deltaPrime <= 0 || deltaPrime >= 1 {
		panic("dp: ComposeAdvanced deltaPrime out of (0,1)")
	}
	kf := float64(k)
	eps := 2*kf*p.Epsilon*p.Epsilon + p.Epsilon*math.Sqrt(2*kf*math.Log(1/deltaPrime))
	return Params{Epsilon: eps, Delta: kf*p.Delta + deltaPrime}
}

// PerRoundEpsilonAdvanced inverts advanced composition approximately: it
// returns an ε₀ such that k adaptive (ε₀, δ₀)-DP rounds compose to at most
// (ε, kδ₀ + δ') by Theorem 4.7. GoodCenter Step 9c uses the paper's explicit
// form ε/(c·sqrt(k·ln(1/δ))); this helper exposes the same shape.
func PerRoundEpsilonAdvanced(totalEpsilon float64, k int, deltaPrime float64) float64 {
	if k <= 0 || totalEpsilon <= 0 {
		panic("dp: PerRoundEpsilonAdvanced invalid arguments")
	}
	// Solve 2kε₀² + ε₀·sqrt(2k ln(1/δ')) = ε for ε₀ (positive root).
	a := 2 * float64(k)
	b := math.Sqrt(2 * float64(k) * math.Log(1/deltaPrime))
	c := -totalEpsilon
	return (-b + math.Sqrt(b*b-4*a*c)) / (2 * a)
}

// Accountant tracks privacy budget spent by a sequence of mechanisms under
// basic composition, and refuses to exceed a configured limit. The 1-cluster
// pipeline uses it in tests to assert that GoodRadius + GoodCenter stay
// within the advertised (ε, δ).
type Accountant struct {
	limit Params
	spent Params
}

// NewAccountant returns an accountant with the given total budget.
func NewAccountant(limit Params) (*Accountant, error) {
	if err := limit.Validate(); err != nil {
		return nil, err
	}
	return &Accountant{limit: limit}, nil
}

// Spend registers a mechanism invocation. It returns an error (and records
// nothing) if the invocation would exceed the budget.
func (a *Accountant) Spend(p Params) error {
	const slack = 1e-9 // tolerate float accumulation error
	newEps := a.spent.Epsilon + p.Epsilon
	newDelta := a.spent.Delta + p.Delta
	if newEps > a.limit.Epsilon*(1+slack)+slack || newDelta > a.limit.Delta*(1+slack)+slack {
		return fmt.Errorf("dp: budget exceeded: spending %v on top of %v exceeds %v", p, a.spent, a.limit)
	}
	a.spent.Epsilon = newEps
	a.spent.Delta = newDelta
	return nil
}

// Spent returns the budget consumed so far.
func (a *Accountant) Spent() Params { return a.spent }

// Remaining returns the unspent budget (coordinates clipped at zero).
func (a *Accountant) Remaining() Params {
	return Params{
		Epsilon: math.Max(0, a.limit.Epsilon-a.spent.Epsilon),
		Delta:   math.Max(0, a.limit.Delta-a.spent.Delta),
	}
}

// LaplaceMechanism releases value + Lap(l1Sensitivity/ε), which is
// (ε, 0)-DP for an L1-sensitivity-l1Sensitivity query (Theorem 2.3).
func LaplaceMechanism(rng *rand.Rand, value, l1Sensitivity, epsilon float64) float64 {
	if l1Sensitivity <= 0 || epsilon <= 0 {
		panic("dp: LaplaceMechanism requires positive sensitivity and epsilon")
	}
	return value + noise.Laplace(rng, l1Sensitivity/epsilon)
}

// NoisyCount releases a sensitivity-1 count under (ε, 0)-DP.
func NoisyCount(rng *rand.Rand, count int, epsilon float64) float64 {
	return LaplaceMechanism(rng, float64(count), 1, epsilon)
}

// GaussianMechanism releases value + N(0, σ²)^d with σ from Theorem 2.4,
// which is (ε, δ)-DP for an L2-sensitivity-l2Sensitivity query.
func GaussianMechanism(rng *rand.Rand, value vec.Vector, l2Sensitivity float64, p Params) vec.Vector {
	if p.Delta <= 0 {
		panic("dp: GaussianMechanism requires delta > 0")
	}
	sigma := noise.GaussianSigma(l2Sensitivity, p.Epsilon, p.Delta)
	return value.Add(noise.GaussianVector(rng, value.Dim(), sigma))
}

// ErrNoCandidates is returned by selection mechanisms invoked with an empty
// candidate list.
var ErrNoCandidates = errors.New("dp: no candidates")

// ExponentialMechanism privately selects an index into scores, sampling
// index i with probability ∝ exp(ε·scoreᵢ/(2·sensitivity)). It satisfies
// (ε, 0)-DP when each score has the stated sensitivity (McSherry–Talwar).
//
// Scores may be any finite floats; −Inf excludes a candidate outright.
func ExponentialMechanism(rng *rand.Rand, scores []float64, sensitivity, epsilon float64) (int, error) {
	if len(scores) == 0 {
		return 0, ErrNoCandidates
	}
	if sensitivity <= 0 || epsilon <= 0 {
		return 0, fmt.Errorf("dp: exponential mechanism requires positive sensitivity and epsilon")
	}
	// Normalize by the max score so exponentials do not overflow.
	maxS := math.Inf(-1)
	for _, s := range scores {
		if math.IsNaN(s) {
			return 0, fmt.Errorf("dp: NaN score")
		}
		if s > maxS {
			maxS = s
		}
	}
	if math.IsInf(maxS, -1) {
		return 0, fmt.Errorf("dp: all candidates excluded (−Inf scores)")
	}
	coef := epsilon / (2 * sensitivity)
	weights := make([]float64, len(scores))
	var total float64
	for i, s := range scores {
		if math.IsInf(s, -1) {
			weights[i] = 0
			continue
		}
		w := math.Exp(coef * (s - maxS))
		weights[i] = w
		total += w
	}
	u := rng.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i, nil
		}
	}
	// Floating point edge: return last non-excluded candidate.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("dp: exponential mechanism failed to sample")
}

// ReportNoisyMax adds Lap(2·sensitivity/ε) to each score and returns the
// argmax, an (ε, 0)-DP selection primitive.
func ReportNoisyMax(rng *rand.Rand, scores []float64, sensitivity, epsilon float64) (int, error) {
	if len(scores) == 0 {
		return 0, ErrNoCandidates
	}
	if sensitivity <= 0 || epsilon <= 0 {
		return 0, fmt.Errorf("dp: report-noisy-max requires positive sensitivity and epsilon")
	}
	best, bestVal := 0, math.Inf(-1)
	scale := 2 * sensitivity / epsilon
	for i, s := range scores {
		v := s + noise.Laplace(rng, scale)
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best, nil
}
