package dp

import (
	"math"
	"strings"
	"testing"
)

func TestParamsString(t *testing.T) {
	s := Params{Epsilon: 0.5, Delta: 1e-6}.String()
	if !strings.Contains(s, "0.5") || !strings.Contains(s, "1e-06") {
		t.Errorf("String = %q", s)
	}
}

func TestParamsScale(t *testing.T) {
	p := Params{Epsilon: 2, Delta: 0.1}.Scale(0.25)
	if p.Epsilon != 0.5 || math.Abs(p.Delta-0.025) > 1e-15 {
		t.Errorf("Scale = %+v", p)
	}
}

func TestComposeAdvancedPanics(t *testing.T) {
	cases := []func(){
		func() { ComposeAdvanced(Params{1, 0}, 0, 0.1) },
		func() { ComposeAdvanced(Params{1, 0}, 5, 0) },
		func() { ComposeAdvanced(Params{1, 0}, 5, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPerRoundEpsilonAdvancedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic on k=0")
		}
	}()
	PerRoundEpsilonAdvanced(1, 0, 0.1)
}

func TestLaplaceMechanismPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic on zero sensitivity")
		}
	}()
	LaplaceMechanism(nil, 1, 0, 1)
}

func TestAccountantSlackTolerance(t *testing.T) {
	// Spending the budget in ten float-imprecise slices must still fit.
	a, err := NewAccountant(Params{Epsilon: 1, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Spend(Params{Epsilon: 0.1, Delta: 1e-7}); err != nil {
			t.Fatalf("slice %d rejected: %v", i, err)
		}
	}
	if spent := a.Spent(); math.Abs(spent.Epsilon-1) > 1e-9 {
		t.Errorf("Spent = %+v", spent)
	}
}
