package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privcluster/internal/vec"
)

func TestParamsValidate(t *testing.T) {
	good := []Params{{1, 0}, {0.1, 1e-9}, {10, 0.5}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", p, err)
		}
	}
	bad := []Params{{0, 0}, {-1, 0}, {1, -0.1}, {1, 1}, {math.NaN(), 0}, {math.Inf(1), 0}, {1, math.NaN()}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestSplitAndComposeRoundTrip(t *testing.T) {
	p := Params{Epsilon: 1, Delta: 1e-6}
	parts := make([]Params, 4)
	for i := range parts {
		parts[i] = p.Split(4)
	}
	total := ComposeBasic(parts...)
	if math.Abs(total.Epsilon-1) > 1e-12 || math.Abs(total.Delta-1e-6) > 1e-18 {
		t.Errorf("Split/Compose round trip = %v", total)
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(0) did not panic")
		}
	}()
	Params{1, 0}.Split(0)
}

func TestComposeAdvancedFormula(t *testing.T) {
	p := Params{Epsilon: 0.1, Delta: 1e-8}
	k := 100
	dp := 1e-6
	got := ComposeAdvanced(p, k, dp)
	wantEps := 2*float64(k)*0.01 + 0.1*math.Sqrt(2*float64(k)*math.Log(1/dp))
	if math.Abs(got.Epsilon-wantEps) > 1e-9 {
		t.Errorf("ComposeAdvanced eps = %v, want %v", got.Epsilon, wantEps)
	}
	if math.Abs(got.Delta-(float64(k)*1e-8+1e-6)) > 1e-15 {
		t.Errorf("ComposeAdvanced delta = %v", got.Delta)
	}
}

func TestComposeAdvancedBeatsBasicForManyRounds(t *testing.T) {
	p := Params{Epsilon: 0.01, Delta: 0}
	k := 10000
	adv := ComposeAdvanced(p, k, 1e-9)
	basic := p.Epsilon * float64(k)
	if adv.Epsilon >= basic {
		t.Errorf("advanced composition (%v) not better than basic (%v) at k=%d", adv.Epsilon, basic, k)
	}
}

func TestPerRoundEpsilonAdvancedInverts(t *testing.T) {
	total := 0.5
	k := 64
	dpp := 1e-7
	e0 := PerRoundEpsilonAdvanced(total, k, dpp)
	if e0 <= 0 {
		t.Fatalf("per-round epsilon = %v", e0)
	}
	back := ComposeAdvanced(Params{Epsilon: e0, Delta: 0}, k, dpp)
	if math.Abs(back.Epsilon-total) > 1e-9 {
		t.Errorf("inversion failed: composed back to %v, want %v", back.Epsilon, total)
	}
}

func TestAccountant(t *testing.T) {
	a, err := NewAccountant(Params{Epsilon: 1, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(Params{0.5, 0}); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(Params{0.5, 1e-6}); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(Params{0.01, 0}); err == nil {
		t.Error("over-budget spend succeeded")
	}
	rem := a.Remaining()
	if rem.Epsilon > 1e-9 || rem.Delta > 1e-15 {
		t.Errorf("Remaining = %v, want ~zero", rem)
	}
}

func TestNewAccountantRejectsBadLimit(t *testing.T) {
	if _, err := NewAccountant(Params{0, 0}); err == nil {
		t.Error("NewAccountant accepted invalid limit")
	}
}

func TestLaplaceMechanismUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += LaplaceMechanism(rng, 10, 1, 0.5)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Errorf("LaplaceMechanism mean = %v, want ~10", mean)
	}
}

func TestNoisyCountConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	big := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if math.Abs(NoisyCount(rng, 100, 1)-100) > 10 {
			big++
		}
	}
	// P[|Lap(1)| > 10] = e^{-10} ≈ 4.5e-5; allow generous slack.
	if float64(big)/n > 0.01 {
		t.Errorf("noisy count deviated >10 in %d/%d trials", big, n)
	}
}

func TestGaussianMechanismShapeAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	val := vec.Of(1, 2, 3)
	const n = 20000
	sum := vec.New(3)
	for i := 0; i < n; i++ {
		out := GaussianMechanism(rng, val, 1, Params{1, 1e-6})
		if out.Dim() != 3 {
			t.Fatalf("dim = %d", out.Dim())
		}
		sum.AddInPlace(out)
	}
	mean := sum.Scale(1.0 / n)
	if !mean.ApproxEqual(val, 0.2) {
		t.Errorf("Gaussian mechanism mean = %v, want ≈%v", mean, val)
	}
}

func TestGaussianMechanismPanicsWithoutDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GaussianMechanism with delta=0 did not panic")
		}
	}()
	GaussianMechanism(rand.New(rand.NewSource(1)), vec.Of(1), 1, Params{1, 0})
}

func TestExponentialMechanismPrefersHighScores(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	scores := []float64{0, 0, 50, 0}
	wins := 0
	const n = 2000
	for i := 0; i < n; i++ {
		idx, err := ExponentialMechanism(rng, scores, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 2 {
			wins++
		}
	}
	if float64(wins)/n < 0.99 {
		t.Errorf("high-score candidate won only %d/%d", wins, n)
	}
}

func TestExponentialMechanismUniformOnTies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scores := []float64{7, 7}
	count0 := 0
	const n = 20000
	for i := 0; i < n; i++ {
		idx, _ := ExponentialMechanism(rng, scores, 1, 1)
		if idx == 0 {
			count0++
		}
	}
	if frac := float64(count0) / n; math.Abs(frac-0.5) > 0.02 {
		t.Errorf("tie split = %v, want ~0.5", frac)
	}
}

func TestExponentialMechanismErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := ExponentialMechanism(rng, nil, 1, 1); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := ExponentialMechanism(rng, []float64{1}, 0, 1); err == nil {
		t.Error("zero sensitivity accepted")
	}
	if _, err := ExponentialMechanism(rng, []float64{math.NaN()}, 1, 1); err == nil {
		t.Error("NaN score accepted")
	}
	if _, err := ExponentialMechanism(rng, []float64{math.Inf(-1)}, 1, 1); err == nil {
		t.Error("all-excluded candidates accepted")
	}
}

func TestExponentialMechanismExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scores := []float64{math.Inf(-1), 1, math.Inf(-1)}
	for i := 0; i < 100; i++ {
		idx, err := ExponentialMechanism(rng, scores, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("excluded candidate %d selected", idx)
		}
	}
}

func TestExponentialMechanismLargeScoresNoOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	scores := []float64{1e308, 1e308 - 1}
	idx, err := ExponentialMechanism(rng, scores, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 && idx != 1 {
		t.Fatalf("idx = %d", idx)
	}
}

func TestReportNoisyMax(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scores := []float64{0, 100, 0}
	for i := 0; i < 100; i++ {
		idx, err := ReportNoisyMax(rng, scores, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("noisy max missed a 100-vs-0 gap, idx=%d", idx)
		}
	}
	if _, err := ReportNoisyMax(rng, nil, 1, 1); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := ReportNoisyMax(rng, []float64{1}, 1, 0); err == nil {
		t.Error("zero epsilon accepted")
	}
}

// Property: composition arithmetic is commutative and monotone.
func TestComposePropertyBased(t *testing.T) {
	f := func(e1, e2, d1, d2 float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Abs(math.Remainder(x, 100))
		}
		p1 := Params{clamp(e1), clamp(d1) / (1 + clamp(d1))}
		p2 := Params{clamp(e2), clamp(d2) / (1 + clamp(d2))}
		a := ComposeBasic(p1, p2)
		b := ComposeBasic(p2, p1)
		return math.Abs(a.Epsilon-b.Epsilon) < 1e-12 &&
			math.Abs(a.Delta-b.Delta) < 1e-12 &&
			a.Epsilon >= p1.Epsilon && a.Delta >= p1.Delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNoisyAverageRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	center := vec.Of(5, 5)
	var vs []vec.Vector
	for i := 0; i < 5000; i++ {
		vs = append(vs, vec.Of(5+rng.Float64()*0.1-0.05, 5+rng.Float64()*0.1-0.05))
	}
	res, err := NoisyAverage(rng, vs, center, 0.2, Params{1, 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("aborted with 5000 points in range")
	}
	if res.Average.Dist(center) > 0.5 {
		t.Errorf("noisy average %v too far from %v (sigma=%v)", res.Average, center, res.Sigma)
	}
	if res.Count != 5000 {
		t.Errorf("count = %d", res.Count)
	}
}

func TestNoisyAverageAbortsOnEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	res, err := NoisyAverage(rng, nil, vec.Of(0, 0), 1, Params{1, 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("NoisyAverage on empty input did not abort")
	}
}

func TestNoisyAverageExcludesOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var vs []vec.Vector
	for i := 0; i < 2000; i++ {
		vs = append(vs, vec.Of(1, 1))
	}
	// A distant outlier must not shift the result (it is screened by g).
	vs = append(vs, vec.Of(1e9, 1e9))
	res, err := NoisyAverage(rng, vs, vec.Of(1, 1), 0.5, Params{1, 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("aborted")
	}
	if res.Count != 2000 {
		t.Errorf("count = %d, want 2000 (outlier excluded)", res.Count)
	}
	if res.Average.Dist(vec.Of(1, 1)) > 0.3 {
		t.Errorf("average %v shifted by outlier", res.Average)
	}
}

func TestNoisyAverageParameterErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	if _, err := NoisyAverage(rng, nil, vec.Of(0), 1, Params{0, 0.1}); err == nil {
		t.Error("invalid epsilon accepted")
	}
	if _, err := NoisyAverage(rng, nil, vec.Of(0), 1, Params{1, 0}); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := NoisyAverage(rng, nil, vec.Of(0), -1, Params{1, 0.1}); err == nil {
		t.Error("negative diameter accepted")
	}
	if _, err := NoisyAverage(rng, []vec.Vector{vec.Of(1, 2)}, vec.Of(0), 1, Params{1, 0.1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestNoisyAverageZeroDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var vs []vec.Vector
	for i := 0; i < 1000; i++ {
		vs = append(vs, vec.Of(3, 4))
	}
	res, err := NoisyAverage(rng, vs, vec.Of(3, 4), 0, Params{1, 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("aborted")
	}
	if !res.Average.Equal(vec.Of(3, 4)) {
		t.Errorf("zero-diameter average = %v, want exactly (3,4)", res.Average)
	}
}
