package dp

import (
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/noise"
	"privcluster/internal/vec"
)

// NoisyAverageResult is the outcome of Algorithm NoisyAVG (Algorithm 5).
// Bottom (Aborted == true) means the noisy selected-set size estimate was
// non-positive, in which case no average is released.
type NoisyAverageResult struct {
	Average vec.Vector // the released noisy average (nil when Aborted)
	Aborted bool       // ⊥ output of the algorithm
	Sigma   float64    // per-coordinate Gaussian std that was applied
	Count   int        // true number of selected vectors (diagnostic only; never released)
}

// NoisyAverage implements Algorithm NoisyAVG (Appendix A of the paper): an
// (ε, δ)-DP estimate of the average of the vectors v ∈ V with g(v) = 1,
// where the predicate g selects the closed ball of the given radius around
// center (Observation A.2's generalization: the selected set need not be
// centered at the origin, only have bounded diameter Δg = 2·radius).
//
// Following the algorithm verbatim:
//
//  1. m̂ = |{v : g(v)=1}| + Lap(2/ε) − (2/ε)·ln(2/δ); output ⊥ if m̂ ≤ 0.
//  2. σ = (8·Δg/(ε·m̂))·sqrt(2·ln(8/δ)); release avg + N(0, σ²)^d.
//
// The sensitivity bound ‖g(V)−g(V′)‖₂ ≤ 4Δg/(m+1) of Appendix A applies
// with Δg = 2·radius. Inputs outside the predicate ball are excluded by g;
// the caller guarantees nothing about them, which is exactly what makes the
// privacy analysis dataset-independent.
func NoisyAverage(rng *rand.Rand, vectors []vec.Vector, center vec.Vector, radius float64, p Params) (NoisyAverageResult, error) {
	if err := p.Validate(); err != nil {
		return NoisyAverageResult{}, err
	}
	if p.Delta <= 0 {
		return NoisyAverageResult{}, fmt.Errorf("dp: NoisyAverage requires delta > 0")
	}
	if radius < 0 {
		return NoisyAverageResult{}, fmt.Errorf("dp: NoisyAverage negative radius")
	}
	d := center.Dim()

	// Select the vectors inside the predicate ball (g(v) = 1 iff
	// ‖v − center‖₂ ≤ radius). Work in recentered coordinates per
	// Observation A.2.
	var sum vec.Vector = make(vec.Vector, d)
	m := 0
	for _, v := range vectors {
		if v.Dim() != d {
			return NoisyAverageResult{}, vec.ErrDimMismatch
		}
		if v.Dist(center) <= radius {
			// Accumulate v − center without materializing the difference
			// (the per-vector allocation dominates at large selected sets).
			for j := range sum {
				sum[j] += v[j] - center[j]
			}
			m++
		}
	}
	return noisyAverageTail(rng, sum, m, center, radius, p)
}

// NoisyAverageRows is NoisyAverage over rows ids of a frame: the same
// mechanism consuming the same noise stream — releases are bit-identical to
// calling NoisyAverage on the gathered vectors — without materializing the
// gather. Float32 rows are decoded through one scratch buffer.
func NoisyAverageRows(rng *rand.Rand, f *vec.Frame, ids []int, center vec.Vector, radius float64, p Params) (NoisyAverageResult, error) {
	if err := p.Validate(); err != nil {
		return NoisyAverageResult{}, err
	}
	if p.Delta <= 0 {
		return NoisyAverageResult{}, fmt.Errorf("dp: NoisyAverage requires delta > 0")
	}
	if radius < 0 {
		return NoisyAverageResult{}, fmt.Errorf("dp: NoisyAverage negative radius")
	}
	d := center.Dim()
	if f != nil && f.Dim() != d {
		return NoisyAverageResult{}, vec.ErrDimMismatch
	}

	var sum vec.Vector = make(vec.Vector, d)
	var scratch vec.Vector
	m := 0
	for _, id := range ids {
		// Same selection comparison as NoisyAverage: √distSq against radius.
		if math.Sqrt(f.DistSq(id, center)) <= radius {
			row := f.RowView(id, scratch)
			scratch = row
			for j := range sum {
				sum[j] += row[j] - center[j]
			}
			m++
		}
	}
	return noisyAverageTail(rng, sum, m, center, radius, p)
}

// noisyAverageTail is the release half shared by both entry points: the
// noisy size test and the Gaussian release over the recentered sum.
func noisyAverageTail(rng *rand.Rand, sum vec.Vector, m int, center vec.Vector, radius float64, p Params) (NoisyAverageResult, error) {
	d := center.Dim()

	// Step 1: noisy size test.
	mHat := float64(m) + noise.Laplace(rng, 2/p.Epsilon) - (2/p.Epsilon)*math.Log(2/p.Delta)
	if mHat <= 0 {
		return NoisyAverageResult{Aborted: true, Count: m}, nil
	}

	// Step 2: Gaussian release. Δg = 2·radius bounds the selected set's
	// diameter. For a zero-radius predicate (all selected points identical)
	// the average needs no noise.
	deltaG := 2 * radius
	var sigma float64
	if deltaG > 0 {
		sigma = 8 * deltaG / (p.Epsilon * mHat) * math.Sqrt(2*math.Log(8/p.Delta))
	}
	avg := make(vec.Vector, d)
	if m > 0 {
		avg = sum.Scale(1 / float64(m))
	}
	if sigma > 0 {
		avg = avg.Add(noise.GaussianVector(rng, d, sigma))
	}
	// Undo the recentering.
	avg = avg.Add(center)
	return NoisyAverageResult{Average: avg, Sigma: sigma, Count: m}, nil
}
