// Package stability implements the stability-based "choosing" technique of
// Theorem 2.5 in the paper (from Beimel–Nissim–Stemmer '13 and Vadhan's
// survey): given a dataset S over a universe U and a partition P of U,
// privately return a set in P containing approximately the maximum number
// of elements of S.
//
// The key point — and the reason the technique exists — is that the
// guarantee does not degrade with |P|: the partition may be infinite (e.g.
// all boxes of a randomly shifted grid over R^k), because only bins that
// actually contain data can ever be output, and (ε, δ)-DP absorbs the small
// probability of distinguishing via a bin with a single element.
//
// The implementation is the standard (ε, δ)-DP stability histogram:
//
//	add Lap(2/ε) to the count of every non-empty bin,
//	release the argmax bin if its noisy count exceeds the threshold
//	2 + (2/ε)·ln(2/δ); otherwise release ⊥.
//
// Utility (matching Theorem 2.5's form): if the max bin count T satisfies
// T ≥ (2/ε)·log(4n/βδ) then with probability ≥ 1−β a bin with count
// ≥ T − (4/ε)·log(2n/β) is returned, where n bounds the number of non-empty
// bins (at most the dataset size).
package stability

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"privcluster/internal/noise"
)

// Result is the outcome of a Choose call.
type Result[K cmp.Ordered] struct {
	Key        K       // the selected bin (zero value when Bottom)
	Bottom     bool    // true when no bin passed the stability threshold
	NoisyCount float64 // the winning bin's noisy count (diagnostic)
}

// Params configures the choosing mechanism.
type Params struct {
	Epsilon float64
	Delta   float64
}

// Threshold returns the release threshold 2 + (2/ε)·ln(2/δ) used by Choose.
// Exported so utility analyses and tests can reason about it.
func (p Params) Threshold() float64 {
	return 2 + (2/p.Epsilon)*math.Log(2/p.Delta)
}

func (p Params) validate() error {
	if p.Epsilon <= 0 || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("stability: epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Delta <= 0 || p.Delta >= 1 || math.IsNaN(p.Delta) {
		return fmt.Errorf("stability: delta must be in (0,1), got %v", p.Delta)
	}
	return nil
}

// Choose privately selects a bin with approximately maximal count from the
// given histogram (bin key → number of dataset elements in the bin). Bins
// with non-positive counts are ignored — callers build the map only from
// data actually present, which is what keeps the mechanism independent of
// the partition size.
//
// Choose is (ε, δ)-differentially private when the histogram is built by
// partitioning the dataset (each element contributes to exactly one bin).
//
// Bins are visited in sorted key order: noise is drawn during the scan, so
// iterating the map directly would couple the draws to Go's randomized map
// order and make seeded runs irreproducible (keys are ordered for exactly
// this reason — the DP analysis is order-independent).
func Choose[K cmp.Ordered](rng *rand.Rand, hist map[K]int, p Params) (Result[K], error) {
	keys := make([]K, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	counts := make([]int, len(keys))
	for i, k := range keys {
		counts[i] = hist[k]
	}
	// One shared noise-consuming loop: delegating keeps the rand stream
	// bit-identical between the map and positional forms, which GoodCenter's
	// cross-backend seeded reproducibility depends on.
	res, err := ChooseIndexed(rng, counts, p)
	if err != nil || res.Bottom {
		return Result[K]{Bottom: true}, err
	}
	return Result[K]{Key: keys[res.Key], NoisyCount: res.NoisyCount}, nil
}

// ChooseIndexed is Choose over a histogram presented positionally: counts[i]
// is the number of dataset elements in bin i, and the returned Result's Key
// is the selected position. Non-positive counts are skipped, exactly like
// Choose skips them.
//
// The privacy analysis is identical to Choose (iid noise makes it
// order-independent), but the caller fixes the enumeration order. That is
// the point: GoodCenter's partition engine enumerates its boxes in a
// canonical geometric order (sorted cell coordinates), so seeded runs stay
// bit-identical no matter how the box keys are represented internally
// (bit-packed, hashed, or the legacy strings).
func ChooseIndexed(rng *rand.Rand, counts []int, p Params) (Result[int], error) {
	if err := p.validate(); err != nil {
		return Result[int]{}, err
	}
	thresh := p.Threshold()
	var best Result[int]
	best.Bottom = true
	bestVal := math.Inf(-1)
	for i, c := range counts {
		if c <= 0 {
			continue
		}
		v := float64(c) + noise.Laplace(rng, 2/p.Epsilon)
		if v > bestVal {
			bestVal = v
			best.Key = i
			best.NoisyCount = v
		}
	}
	if math.IsInf(bestVal, -1) || bestVal < thresh {
		return Result[int]{Bottom: true}, nil
	}
	best.Bottom = false
	return best, nil
}

// CountNeededForSuccess returns the bin count T that guarantees, with
// probability ≥ 1−β over the noise, that Choose releases a bin (it does not
// output ⊥) when n bounds the number of non-empty bins. This is the
// quantitative premise of Theorem 2.5: T ≥ (2/ε)·log(4n/(βδ)).
func CountNeededForSuccess(p Params, n int, beta float64) float64 {
	if n < 1 {
		n = 1
	}
	return (2 / p.Epsilon) * math.Log(4*float64(n)/(beta*p.Delta))
}

// LossBound returns the count gap guaranteed by Theorem 2.5: with
// probability ≥ 1−β the selected bin's true count is at least
// T − (4/ε)·log(2n/β) where T is the max bin count.
func LossBound(p Params, n int, beta float64) float64 {
	if n < 1 {
		n = 1
	}
	return (4 / p.Epsilon) * math.Log(2*float64(n)/beta)
}

// Histogram builds a bin-count map from data via a bucketing function.
// A convenience used by GoodCenter (box index of each projected point) and
// by the per-axis interval choice.
func Histogram[T any, K comparable](data []T, bucket func(T) K) map[K]int {
	h := make(map[K]int, len(data))
	for _, x := range data {
		h[bucket(x)]++
	}
	return h
}
