package stability

import (
	"math"
	"math/rand"
	"testing"
)

func params() Params { return Params{Epsilon: 1, Delta: 1e-6} }

func TestChooseFindsDominantBin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hist := map[string]int{"a": 3, "b": 500, "c": 7}
	wins := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		res, err := Choose(rng, hist, params())
		if err != nil {
			t.Fatal(err)
		}
		if res.Bottom {
			t.Fatal("bottom with a count-500 bin present")
		}
		if res.Key == "b" {
			wins++
		}
	}
	if wins < trials-2 {
		t.Errorf("dominant bin won only %d/%d", wins, trials)
	}
}

func TestChooseBottomOnEmptyAndSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res, err := Choose(rng, map[int]int{}, params())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bottom {
		t.Error("non-bottom result on empty histogram")
	}

	// All-tiny bins: should essentially always be bottom
	// (threshold ≈ 2 + 2·ln(2e6) ≈ 31).
	bottoms := 0
	for i := 0; i < 100; i++ {
		res, err := Choose(rng, map[int]int{1: 1, 2: 1, 3: 2}, params())
		if err != nil {
			t.Fatal(err)
		}
		if res.Bottom {
			bottoms++
		}
	}
	if bottoms < 95 {
		t.Errorf("sparse histogram released a bin in %d/100 trials", 100-bottoms)
	}
}

func TestChooseIgnoresNonPositiveCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hist := map[string]int{"neg": -5, "zero": 0, "big": 1000}
	for i := 0; i < 50; i++ {
		res, err := Choose(rng, hist, params())
		if err != nil {
			t.Fatal(err)
		}
		if res.Bottom || res.Key != "big" {
			t.Fatalf("result = %+v, want big", res)
		}
	}
}

func TestChooseParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Choose(rng, map[int]int{1: 1}, Params{0, 0.1}); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := Choose(rng, map[int]int{1: 1}, Params{1, 0}); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := Choose(rng, map[int]int{1: 1}, Params{1, 1}); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestThresholdFormula(t *testing.T) {
	p := Params{Epsilon: 2, Delta: 1e-4}
	want := 2 + (2.0/2.0)*math.Log(2/1e-4)
	if got := p.Threshold(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Threshold = %v, want %v", got, want)
	}
}

func TestUtilityGuaranteeEmpirically(t *testing.T) {
	// Theorem 2.5 shape: when the max count clears CountNeededForSuccess,
	// Choose must (a) not output ⊥ and (b) return a bin within LossBound of
	// the max, with probability ≥ 1−β. Check empirically at β = 0.05.
	p := params()
	beta := 0.05
	nBins := 50
	need := int(CountNeededForSuccess(p, nBins, beta)) + 1
	loss := LossBound(p, nBins, beta)

	rng := rand.New(rand.NewSource(5))
	failures := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		hist := make(map[int]int, nBins)
		for b := 0; b < nBins-1; b++ {
			hist[b] = rng.Intn(need / 2)
		}
		hist[nBins-1] = need // the heavy bin
		res, err := Choose(rng, hist, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bottom || float64(hist[res.Key]) < float64(need)-loss {
			failures++
		}
	}
	if frac := float64(failures) / trials; frac > beta {
		t.Errorf("utility failure rate %v exceeds beta %v", frac, beta)
	}
}

func TestHistogramHelper(t *testing.T) {
	data := []int{1, 2, 3, 4, 5, 6}
	h := Histogram(data, func(x int) string {
		if x%2 == 0 {
			return "even"
		}
		return "odd"
	})
	if h["even"] != 3 || h["odd"] != 3 {
		t.Errorf("Histogram = %v", h)
	}
	if len(Histogram([]int{}, func(x int) int { return x })) != 0 {
		t.Error("histogram of empty data not empty")
	}
}

func TestChooseDeterministicWithSeed(t *testing.T) {
	hist := map[int]int{1: 100, 2: 101}
	a, _ := Choose(rand.New(rand.NewSource(9)), hist, params())
	b, _ := Choose(rand.New(rand.NewSource(9)), hist, params())
	if a.Key != b.Key || a.Bottom != b.Bottom {
		t.Error("same seed produced different choices")
	}
}

func TestChooseIndexedMatchesChoose(t *testing.T) {
	// ChooseIndexed over counts laid out in sorted-key order must consume
	// the noise stream exactly like Choose over the equivalent map.
	hist := map[int]int{0: 100, 1: 7, 2: 180, 3: 0, 4: -2}
	counts := []int{100, 7, 180, 0, -2}
	a, errA := Choose(rand.New(rand.NewSource(10)), hist, params())
	b, errB := ChooseIndexed(rand.New(rand.NewSource(10)), counts, params())
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.Bottom != b.Bottom || a.Key != b.Key || a.NoisyCount != b.NoisyCount {
		t.Errorf("ChooseIndexed %+v diverged from Choose %+v", b, a)
	}
}

func TestChooseIndexedBottom(t *testing.T) {
	res, err := ChooseIndexed(rand.New(rand.NewSource(11)), []int{0, -3, 0}, params())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bottom {
		t.Error("all-non-positive counts did not return bottom")
	}
	if _, err := ChooseIndexed(rand.New(rand.NewSource(12)), []int{1}, Params{Epsilon: -1, Delta: 0.1}); err == nil {
		t.Error("invalid params accepted")
	}
}
