package privcluster

import (
	"math"
	"math/rand"
	"testing"
)

func TestKMeansPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	centers := []Point{{0.25, 0.25}, {0.75, 0.75}}
	for _, c := range centers {
		for i := 0; i < 400; i++ {
			pts = append(pts, Point{
				c[0] + (rng.Float64()*2-1)*0.02,
				c[1] + (rng.Float64()*2-1)*0.02,
			})
		}
	}
	res, err := KMeans(pts, 2, KMeansOptions{
		Options: Options{Epsilon: 24, Delta: 0.06, Seed: 5, GridSize: 1024},
		T:       300, Rounds: 2, MoveRadius: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 {
		t.Fatal("no centers")
	}
	hit := 0
	for _, c := range centers {
		for _, z := range res.Centers {
			if math.Hypot(z[0]-c[0], z[1]-c[1]) < 0.1 {
				hit++
				break
			}
		}
	}
	if hit < 2 {
		t.Errorf("recovered %d/2 centers: %v", hit, res.Centers)
	}
	if res.Cost <= 0 || res.Cost > 0.05 {
		t.Errorf("cost = %v", res.Cost)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, KMeansOptions{}); err != ErrNoPoints {
		t.Errorf("empty input error = %v", err)
	}
	pts := []Point{{0.5, 0.5}, {0.5}}
	if _, err := KMeans(pts, 1, KMeansOptions{Options: Options{Seed: 1}}); err == nil {
		t.Error("ragged dimensions accepted")
	}
	if _, err := KMeans([]Point{{0.5, 0.5}}, 0, KMeansOptions{Options: Options{Seed: 1}}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBoundsRescaling(t *testing.T) {
	// Same geometry as TestFindClusterPublicAPI but on the [−50, 150]^2
	// domain (Remark 3.3): results must come back in original units.
	rng := rand.New(rand.NewSource(2))
	unitPts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	scale := func(p Point) Point {
		out := make(Point, len(p))
		for i, x := range p {
			out[i] = -50 + 200*x
		}
		return out
	}
	pts := make([]Point, len(unitPts))
	for i, p := range unitPts {
		pts[i] = scale(p)
	}
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024, Min: -50, Max: 150}
	c, err := FindCluster(pts, 400, o)
	if err != nil {
		t.Fatal(err)
	}
	// Center must land inside the original domain, not the unit cube.
	for j, x := range c.Center {
		if x < -50 || x > 150 {
			t.Errorf("center coordinate %d = %v outside [−50, 150]", j, x)
		}
	}
	// Radius is in original units: the unit-cube equivalent times 200.
	if c.Radius < 1 || c.Radius > 300 {
		t.Errorf("radius %v not in original units", c.Radius)
	}
	// Contains/Count operate in original units.
	if got := c.Count(pts); got < 400 {
		t.Errorf("rescaled ball holds %d < 400 points", got)
	}
}

func TestBoundsValidation(t *testing.T) {
	pts := []Point{{0.5, 0.5}, {0.6, 0.6}}
	if _, err := FindCluster(pts, 1, Options{Seed: 1, Min: 5, Max: 5}); err == nil {
		t.Error("Max == Min accepted")
	}
	if _, err := FindCluster(pts, 1, Options{Seed: 1, Min: 5, Max: 1}); err == nil {
		t.Error("Max < Min accepted")
	}
}
