package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privcluster"
	"privcluster/internal/daemon"
)

// TestRunDaemonMode spins up a real privclusterd server in-process and
// drives it through the client's -daemon path: the printed release must
// be bit-identical to the same seeded query on a local handle over the
// same CSV, and once the principal's durable grant is exhausted the
// client surfaces the typed refusal.
func TestRunDaemonMode(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	pts := make([]privcluster.Point, 0, 800)
	var csv strings.Builder
	for i := 0; i < 500; i++ {
		p := privcluster.Point{0.5 + 0.02*(rng.Float64()-0.5), 0.5 + 0.02*(rng.Float64()-0.5)}
		pts = append(pts, p)
		fmt.Fprintf(&csv, "%g,%g\n", p[0], p[1])
	}
	for i := 0; i < 300; i++ {
		p := privcluster.Point{rng.Float64(), rng.Float64()}
		pts = append(pts, p)
		fmt.Fprintf(&csv, "%g,%g\n", p[0], p[1])
	}
	csvPath := filepath.Join(dir, "points.csv")
	if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := daemon.New(daemon.Config{
		Listen:    "127.0.0.1:0",
		LedgerDir: filepath.Join(dir, "ledger"),
		Datasets:  []daemon.DatasetConfig{{Name: "planted", CSV: csvPath, Grid: 1024}},
		Principals: []daemon.PrincipalConfig{
			{Name: "alice", APIKey: "k", Epsilon: 4, Delta: 0.05},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		srv.Close()
	}()
	base := "http://" + srv.Addr()

	var out bytes.Buffer
	if err := runDaemon(&out, base, "k", "planted", 400, 1, 4, 0.05, 0.1, 7, false); err != nil {
		t.Fatalf("runDaemon: %v\noutput:\n%s", err, out.String())
	}

	// The same seeded query on a local handle over the same points: the
	// daemon must have released exactly this cluster.
	ds, err := privcluster.Open(pts, privcluster.DatasetOptions{GridSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.FindCluster(context.Background(), 400, privcluster.QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantLines := fmt.Sprintf("  center: %v\n  radius: %g (radius-stage estimate %g)\n",
		formatPoint(want.Center), want.Radius, want.RawRadius)
	if !strings.HasPrefix(out.String(), wantLines) {
		t.Errorf("daemon release differs from the local seeded release:\ngot:\n%s\nwant prefix:\n%s", out.String(), wantLines)
	}
	if !strings.Contains(out.String(), "remaining (ε=0, δ=0)") {
		t.Errorf("budget line missing or wrong:\n%s", out.String())
	}

	// The grant is spent; the next query must surface the typed refusal.
	var out2 bytes.Buffer
	err = runDaemon(&out2, base, "k", "planted", 400, 1, 4, 0.05, 0.1, 7, false)
	if err == nil || !strings.Contains(err.Error(), "budget_exhausted") {
		t.Fatalf("exhausted principal: err = %v, want budget_exhausted refusal", err)
	}

	// Missing credentials are caught client-side; a wrong key server-side.
	if err := runDaemon(&bytes.Buffer{}, base, "", "planted", 400, 1, 4, 0.05, 0.1, 0, false); err == nil {
		t.Error("runDaemon without -apikey succeeded")
	}
	if err := runDaemon(&bytes.Buffer{}, base, "wrong", "planted", 400, 1, 4, 0.05, 0.1, 0, false); err == nil || !strings.Contains(err.Error(), "unauthorized") {
		t.Errorf("wrong key: err = %v, want unauthorized", err)
	}
}
