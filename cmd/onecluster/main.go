// Command onecluster runs the differentially private 1-cluster algorithm on
// a CSV of points (one point per line, comma-separated coordinates in
// [0,1]) and prints the released ball.
//
// Usage:
//
//	onecluster -t 400 -epsilon 2 -delta 0.05 points.csv
//	cat points.csv | onecluster -t 400
//
// Serving mode: -queries runs several t values against one prepared
// Dataset handle (the index is built once and reused), each query costing
// (-epsilon, -delta), optionally capped by a total -budget; -parallel runs
// them concurrently through the batch executor:
//
//	onecluster -queries 300,400,500 -epsilon 1 -budget 2,1e-5 points.csv
//	onecluster -queries 300,400,500 -parallel -seed 1 points.csv
//
// -shards controls the scalable index's data partitioning (0 = automatic);
// sharding is a pure performance knob — releases are identical at any
// value under the same seed.
//
// Remote mode: -remote routes the ball-index queries through shard
// servers (cmd/shardserver) over the wire protocol. Partitions are
// comma-separated; replicas of one partition are |-separated, so
// "a|b,c|d" is two partitions with two interchangeable replicas each
// (failover is automatic; see privcluster.Placement). Releases are
// bit-identical to local execution under the same seed regardless of
// which replica answers; combine with -queries/-parallel freely:
//
//	onecluster -t 400 -remote host1:7601,host2:7601 points.csv
//	onecluster -t 400 -remote 'host1:7601|host2:7601,host3:7601|host4:7601' points.csv
//	onecluster -queries 300,400 -placement placement.json points.csv
//
// -placement loads the same topology from a JSON placement file (the
// format cmd/shardctl generates), including the failover knobs that have
// no flag syntax.
//
// Daemon mode: -daemon queries a running privclusterd instead of local
// data — the server holds the points and a durable per-principal budget
// ledger; the client only sends the query and its API key. No CSV input
// is read; -dataset names the served dataset and -apikey authenticates:
//
//	onecluster -daemon http://host:7610 -apikey KEY -dataset points -t 400 -epsilon 2
//
// -trace runs the query under a trace and prints its span tree (stage
// names, durations, operation counts — never data values) after the
// release. Locally and with -remote the tree is collected client-side;
// the 128-bit trace ID also travels to every shard server, which
// announces it on its log, so one query can be followed across
// machines. In -daemon mode the server traces the query, returns the
// ID in the X-Trace-Id response header, and the tree is fetched back
// from GET /v1/trace/{id}:
//
//	onecluster -t 400 -trace points.csv
//	onecluster -daemon http://host:7610 -apikey KEY -dataset points -t 400 -trace
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"privcluster"
)

func main() {
	t := flag.Int("t", 0, "target cluster size (required unless -queries is set)")
	epsilon := flag.Float64("epsilon", 1, "privacy parameter ε (per query with -queries)")
	delta := flag.Float64("delta", 1e-6, "privacy parameter δ (per query with -queries)")
	beta := flag.Float64("beta", 0.1, "failure probability target")
	gridSize := flag.Int64("grid", 1<<16, "|X|: grid values per axis")
	seed := flag.Int64("seed", 0, "random seed (0 = from clock; with -queries, query i uses seed+i)")
	k := flag.Int("k", 1, "number of clusters to locate (k-cover when > 1)")
	queries := flag.String("queries", "", `comma-separated t values run against one Dataset handle (e.g. "300,400,500")`)
	budget := flag.String("budget", "", `total privacy budget "ε,δ" the handle may spend across -queries (empty = unlimited)`)
	shards := flag.Int("shards", 0, "scalable-index shards (0 = automatic: GOMAXPROCS shards at n ≥ 100000); results are identical at any value")
	parallel := flag.Bool("parallel", false, "with -queries: run the queries concurrently through the batch executor")
	remote := flag.String("remote", "", `shard-server placement: comma-separated partitions, |-separated replicas ("a:7601|b:7601,c:7601"); queries run over the wire protocol with automatic replica failover — releases are identical to local execution under the same seed`)
	placementFile := flag.String("placement", "", `JSON placement file (the cmd/shardctl format) describing the shard servers; mutually exclusive with -remote`)
	daemonURL := flag.String("daemon", "", `privclusterd base URL (e.g. "http://host:7610"): run the query against a served dataset instead of local data; requires -apikey and -dataset, reads no CSV`)
	apiKey := flag.String("apikey", "", "API key authenticating to -daemon")
	dataset := flag.String("dataset", "", "served dataset name to query in -daemon mode")
	trace := flag.Bool("trace", false, "trace the query and print its span tree (timings and operation counts only, never data values)")
	flag.Parse()

	if *queries == "" && *t <= 0 {
		fmt.Fprintln(os.Stderr, "onecluster: -t is required and must be positive")
		os.Exit(2)
	}
	if *queries != "" && *k > 1 {
		fmt.Fprintln(os.Stderr, "onecluster: -k cannot be combined with -queries (each query is a single-cluster release)")
		os.Exit(2)
	}
	if *trace && *parallel {
		fmt.Fprintln(os.Stderr, "onecluster: -trace cannot be combined with -parallel (concurrent queries would interleave one span tree)")
		os.Exit(2)
	}
	if *daemonURL != "" {
		if *queries != "" {
			fmt.Fprintln(os.Stderr, "onecluster: -queries is not supported in -daemon mode (issue the queries separately)")
			os.Exit(2)
		}
		if err := runDaemon(os.Stdout, *daemonURL, *apiKey, *dataset, *t, *k, *epsilon, *delta, *beta, *seed, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "onecluster:", err)
			os.Exit(1)
		}
		return
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "onecluster:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	points, err := readPoints(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onecluster:", err)
		os.Exit(1)
	}
	place, err := resolvePlacement(*remote, *placementFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onecluster:", err)
		os.Exit(2)
	}

	if *queries != "" {
		if err := runQueries(os.Stdout, points, *queries, *budget, *epsilon, *delta, *beta, *gridSize, *seed, *shards, *parallel, place, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "onecluster:", err)
			os.Exit(1)
		}
		return
	}

	if place != nil || *trace {
		if err := runHandle(os.Stdout, points, *t, *k, *epsilon, *delta, *beta, *gridSize, *seed, *shards, place, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "onecluster:", err)
			os.Exit(1)
		}
		return
	}

	opts := privcluster.Options{
		Epsilon: *epsilon, Delta: *delta, Beta: *beta,
		GridSize: *gridSize, Seed: *seed, Shards: *shards,
	}
	if *k <= 1 {
		c, err := privcluster.FindCluster(points, *t, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "onecluster:", err)
			os.Exit(1)
		}
		printCluster(os.Stdout, c, points)
		return
	}
	cs, err := privcluster.FindClusters(points, *k, *t, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onecluster:", err)
		os.Exit(1)
	}
	for i, c := range cs {
		fmt.Printf("cluster %d:\n", i+1)
		printCluster(os.Stdout, c, points)
	}
}

// runDaemon issues the query against a running privclusterd and prints
// the released cluster(s) plus the caller's durable budget state. The
// client never sees the data, so no point counts are printed — only
// what the server released. With trace, the server-side span tree is
// fetched back from /v1/trace/{id} using the X-Trace-Id the query
// response carried.
func runDaemon(out io.Writer, base, key, dataset string, t, k int, epsilon, delta, beta float64, seed int64, trace bool) error {
	if dataset == "" {
		return fmt.Errorf("-daemon requires -dataset")
	}
	if key == "" {
		return fmt.Errorf("-daemon requires -apikey")
	}
	base = strings.TrimRight(base, "/")
	body := map[string]any{
		"dataset": dataset, "t": t,
		"epsilon": epsilon, "delta": delta, "beta": beta,
	}
	if seed != 0 {
		body["seed"] = seed
	}
	path := "/v1/query/cluster"
	if k > 1 {
		path = "/v1/query/kcover"
		body["k"] = k
	}
	var result struct {
		// cluster response
		Center    []float64 `json:"center"`
		Radius    float64   `json:"radius"`
		RawRadius float64   `json:"raw_radius"`
		// kcover response
		Clusters []struct {
			Center []float64 `json:"center"`
			Radius float64   `json:"radius"`
		} `json:"clusters"`
	}
	traceID, err := daemonCall(base+path, "POST", key, body, &result)
	if err != nil {
		return err
	}
	if k > 1 {
		for i, c := range result.Clusters {
			fmt.Fprintf(out, "cluster %d:\n", i+1)
			fmt.Fprintf(out, "  center: %v\n", formatPoint(c.Center))
			fmt.Fprintf(out, "  radius: %g\n", c.Radius)
		}
	} else {
		fmt.Fprintf(out, "  center: %v\n", formatPoint(result.Center))
		fmt.Fprintf(out, "  radius: %g (radius-stage estimate %g)\n", result.Radius, result.RawRadius)
	}
	if trace {
		if err := printServerTrace(out, base, traceID); err != nil {
			return err
		}
	}
	var budget struct {
		Spent     map[string]float64 `json:"spent"`
		Remaining map[string]float64 `json:"remaining"`
	}
	if _, err := daemonCall(base+"/v1/budget", "GET", key, nil, &budget); err != nil {
		return err
	}
	fmt.Fprintf(out, "budget: spent (ε=%g, δ=%g), remaining (ε=%g, δ=%g)\n",
		budget.Spent["epsilon"], budget.Spent["delta"],
		budget.Remaining["epsilon"], budget.Remaining["delta"])
	return nil
}

// printServerTrace fetches a retained span tree from /v1/trace/{id} and
// prints it in the same indented form QueryStats.Tree uses.
func printServerTrace(out io.Writer, base, id string) error {
	if id == "" {
		return fmt.Errorf("daemon response carried no X-Trace-Id header (server predates tracing?)")
	}
	var tr struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name       string           `json:"name"`
			Depth      int              `json:"depth"`
			DurationUS int64            `json:"duration_us"`
			Counters   map[string]int64 `json:"counters"`
		} `json:"spans"`
	}
	if _, err := daemonCall(base+"/v1/trace/"+id, "GET", "", nil, &tr); err != nil {
		return fmt.Errorf("fetching trace %s: %w", id, err)
	}
	fmt.Fprintf(out, "trace %s (server-side)\n", tr.TraceID)
	for _, s := range tr.Spans {
		fmt.Fprintf(out, "%s%-24s %12v", strings.Repeat("  ", s.Depth+1), s.Name,
			time.Duration(s.DurationUS)*time.Microsecond)
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(out, "  %s=%d", k, s.Counters[k])
		}
		fmt.Fprintln(out)
	}
	return nil
}

// daemonCall is one authenticated JSON round trip to privclusterd,
// returning the response's X-Trace-Id header (if any); a non-2xx
// response is surfaced as its typed error envelope.
func daemonCall(url, method, key string, body, into any) (string, error) {
	var reader io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return "", err
		}
		reader = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		return "", err
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code == "" {
			return traceID, fmt.Errorf("daemon returned HTTP %d", resp.StatusCode)
		}
		return traceID, fmt.Errorf("daemon refused (%s): %s", envelope.Error.Code, envelope.Error.Message)
	}
	return traceID, json.NewDecoder(resp.Body).Decode(into)
}

// resolvePlacement turns the -remote / -placement flags into the handle's
// Placement: nil when neither is set, the parsed file when -placement is,
// and the "a|b,c|d" partition syntax otherwise.
func resolvePlacement(remote, file string) (*privcluster.Placement, error) {
	if file != "" {
		if strings.TrimSpace(remote) != "" {
			return nil, fmt.Errorf("-remote and -placement are mutually exclusive")
		}
		return privcluster.LoadPlacement(file)
	}
	return parseRemote(remote)
}

// parseRemote parses the -remote flag: comma-separated partitions, each a
// |-separated replica set. nil for an empty flag.
func parseRemote(s string) (*privcluster.Placement, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	partitions := make([][]string, len(parts))
	for i, p := range parts {
		reps := strings.Split(p, "|")
		addrs := make([]string, len(reps))
		for j, r := range reps {
			addrs[j] = strings.TrimSpace(r)
			if addrs[j] == "" {
				return nil, fmt.Errorf("bad -remote %q: partition %d has an empty address", s, i+1)
			}
		}
		partitions[i] = addrs
	}
	return &privcluster.Placement{Partitions: partitions}, nil
}

// runHandle runs the single-shot query (-t, optionally -k) through a
// Dataset handle — the path taken with a shard-server placement (the
// free functions do not carry one) or with -trace (the span tree hangs
// off the handle's query context).
func runHandle(out io.Writer, points []privcluster.Point, t, k int, epsilon, delta, beta float64, gridSize, seed int64, shards int, place *privcluster.Placement, trace bool) error {
	ds, err := privcluster.Open(points, privcluster.DatasetOptions{GridSize: gridSize, Shards: shards, Placement: place})
	if err != nil {
		return err
	}
	defer ds.Close()
	ctx := context.Background()
	q := privcluster.QueryOptions{Epsilon: epsilon, Delta: delta, Beta: beta, Seed: seed}
	var stats privcluster.QueryStats
	if trace {
		ctx = privcluster.WithTrace(ctx)
		q.Stats = &stats
	}
	if k <= 1 {
		c, err := ds.FindCluster(ctx, t, q)
		if err != nil {
			return err
		}
		printCluster(out, c, points)
	} else {
		cs, err := ds.FindClusters(ctx, k, t, q)
		if err != nil {
			return err
		}
		for i, c := range cs {
			fmt.Fprintf(out, "cluster %d:\n", i+1)
			printCluster(out, c, points)
		}
	}
	if trace {
		io.WriteString(out, stats.Tree())
	}
	return nil
}

// runQueries exercises the handle API end to end: one Open, then every t
// from the -queries list as a separate query under the (optional) total
// budget. Sequentially (the default), a budget refusal reports the
// accounting and stops; other per-query failures (e.g. an infeasible t)
// are reported and skipped, since the handle stays usable. With parallel
// set, the queries run concurrently through the batch executor instead —
// same releases under the same seeds, but when the budget cannot cover
// them all, which queries are refused depends on scheduling, so refusals
// are reported per query rather than stopping the run. A non-nil
// placement serves the ball index from those shard servers instead of
// local cores; releases are unchanged.
func runQueries(out io.Writer, points []privcluster.Point, queries, budget string, epsilon, delta, beta float64, gridSize, seed int64, shards int, parallel bool, place *privcluster.Placement, trace bool) error {
	ts, err := parseQueries(queries)
	if err != nil {
		return err
	}
	b, err := parseBudget(budget)
	if err != nil {
		return err
	}
	ds, err := privcluster.Open(points, privcluster.DatasetOptions{
		GridSize: gridSize, Budget: b, Shards: shards, Placement: place,
	})
	if err != nil {
		return err
	}
	defer ds.Close()
	ctx := context.Background()
	qopts := make([]privcluster.QueryOptions, len(ts))
	for i := range ts {
		q := privcluster.QueryOptions{Epsilon: epsilon, Delta: delta, Beta: beta}
		if seed != 0 {
			q.Seed = seed + int64(i)
			// A derived seed that lands on 0 must stay literal, not become
			// the from-the-clock sentinel — the flag promises seed+i.
			q.ZeroSeed = q.Seed == 0
		}
		qopts[i] = q
	}
	if parallel {
		batch := make([]privcluster.Query, len(ts))
		for i, t := range ts {
			batch[i] = privcluster.Query{T: t, Opts: qopts[i]}
		}
		for i, res := range ds.FindClustersBatch(ctx, batch) {
			fmt.Fprintf(out, "query %d (t=%d, ε=%g, δ=%g):\n", i+1, ts[i], epsilon, delta)
			if res.Err != nil {
				fmt.Fprintf(out, "  failed: %v\n", res.Err)
				continue
			}
			printCluster(out, res.Clusters[0], points)
		}
	} else {
		for i, t := range ts {
			qctx := ctx
			var stats privcluster.QueryStats
			if trace {
				// Each sequential query gets its own trace so the printed
				// trees do not share an ID (or a span budget).
				qctx = privcluster.WithTrace(ctx)
				qopts[i].Stats = &stats
			}
			c, err := ds.FindCluster(qctx, t, qopts[i])
			fmt.Fprintf(out, "query %d (t=%d, ε=%g, δ=%g):\n", i+1, t, epsilon, delta)
			if err != nil {
				if errors.Is(err, privcluster.ErrBudgetExhausted) {
					return err
				}
				fmt.Fprintf(out, "  failed: %v\n", err)
				continue
			}
			printCluster(out, c, points)
			if trace {
				io.WriteString(out, stats.Tree())
			}
		}
	}
	spent := ds.Spent()
	if rem, ok := ds.Remaining(); ok {
		fmt.Fprintf(out, "budget: spent %v, remaining %v\n", spent, rem)
	} else {
		fmt.Fprintf(out, "budget: spent %v (no cap)\n", spent)
	}
	return nil
}

// parseQueries parses the -queries flag: a comma-separated list of positive
// t values.
func parseQueries(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ts := make([]int, 0, len(parts))
	for _, p := range parts {
		t, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -queries entry %q: %v", p, err)
		}
		if t <= 0 {
			return nil, fmt.Errorf("bad -queries entry %d: t must be positive", t)
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// parseBudget parses the -budget flag: empty for no budget, or "ε,δ".
func parseBudget(s string) (privcluster.Budget, error) {
	if s == "" {
		return privcluster.Budget{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return privcluster.Budget{}, fmt.Errorf(`bad -budget %q: want "ε,δ"`, s)
	}
	eps, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return privcluster.Budget{}, fmt.Errorf("bad -budget ε %q: %v", parts[0], err)
	}
	del, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return privcluster.Budget{}, fmt.Errorf("bad -budget δ %q: %v", parts[1], err)
	}
	return privcluster.Budget{Epsilon: eps, Delta: del}, nil
}

func printCluster(out io.Writer, c privcluster.Cluster, points []privcluster.Point) {
	fmt.Fprintf(out, "  center: %v\n", formatPoint(c.Center))
	fmt.Fprintf(out, "  radius: %g (radius-stage estimate %g)\n", c.Radius, c.RawRadius)
	fmt.Fprintf(out, "  points inside: %d of %d\n", c.Count(points), len(points))
}

func formatPoint(p privcluster.Point) string {
	parts := make([]string, len(p))
	for i, x := range p {
		parts[i] = strconv.FormatFloat(x, 'g', 6, 64)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func readPoints(r io.Reader) ([]privcluster.Point, error) {
	var points []privcluster.Point
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		p := make(privcluster.Point, len(fields))
		for i, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			p[i] = x
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("no points in input")
	}
	return points, nil
}
