// Command onecluster runs the differentially private 1-cluster algorithm on
// a CSV of points (one point per line, comma-separated coordinates in
// [0,1]) and prints the released ball.
//
// Usage:
//
//	onecluster -t 400 -epsilon 2 -delta 0.05 points.csv
//	cat points.csv | onecluster -t 400
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"privcluster"
)

func main() {
	t := flag.Int("t", 0, "target cluster size (required)")
	epsilon := flag.Float64("epsilon", 1, "privacy parameter ε")
	delta := flag.Float64("delta", 1e-6, "privacy parameter δ")
	beta := flag.Float64("beta", 0.1, "failure probability target")
	gridSize := flag.Int64("grid", 1<<16, "|X|: grid values per axis")
	seed := flag.Int64("seed", 0, "random seed (0 = from clock)")
	k := flag.Int("k", 1, "number of clusters to locate (k-cover when > 1)")
	flag.Parse()

	if *t <= 0 {
		fmt.Fprintln(os.Stderr, "onecluster: -t is required and must be positive")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "onecluster:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	points, err := readPoints(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onecluster:", err)
		os.Exit(1)
	}
	opts := privcluster.Options{
		Epsilon: *epsilon, Delta: *delta, Beta: *beta,
		GridSize: *gridSize, Seed: *seed,
	}

	if *k <= 1 {
		c, err := privcluster.FindCluster(points, *t, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "onecluster:", err)
			os.Exit(1)
		}
		printCluster(c, points)
		return
	}
	cs, err := privcluster.FindClusters(points, *k, *t, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onecluster:", err)
		os.Exit(1)
	}
	for i, c := range cs {
		fmt.Printf("cluster %d:\n", i+1)
		printCluster(c, points)
	}
}

func printCluster(c privcluster.Cluster, points []privcluster.Point) {
	fmt.Printf("  center: %v\n", formatPoint(c.Center))
	fmt.Printf("  radius: %g (radius-stage estimate %g)\n", c.Radius, c.RawRadius)
	fmt.Printf("  points inside: %d of %d\n", c.Count(points), len(points))
}

func formatPoint(p privcluster.Point) string {
	parts := make([]string, len(p))
	for i, x := range p {
		parts[i] = strconv.FormatFloat(x, 'g', 6, 64)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func readPoints(r io.Reader) ([]privcluster.Point, error) {
	var points []privcluster.Point
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		p := make(privcluster.Point, len(fields))
		for i, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			p[i] = x
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("no points in input")
	}
	return points, nil
}
