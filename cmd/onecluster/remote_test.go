package main

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"privcluster"
	"privcluster/internal/transport"
)

// startShardServers brings up n wire-protocol shard servers on real TCP
// listeners on localhost and returns their addresses.
func startShardServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		srv := transport.NewServer(transport.ServerOptions{})
		go srv.Serve(l)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return addrs
}

// TestRemoteEndToEnd: the -remote flag routes onecluster's queries
// through shard servers on localhost, and every printed release — single
// query, k-cover, the -queries handle loop — is byte-identical to the
// local run under the same seed. The dataset exceeds ExactIndexMaxN so
// the local comparison runs the scalable backend, the one remote
// execution presumes.
func TestRemoteEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]privcluster.Point, 0, 6000)
	for i := 0; i < 3800; i++ {
		pts = append(pts, privcluster.Point{0.4 + 0.02*rng.Float64(), 0.6 + 0.02*rng.Float64()})
	}
	for len(pts) < 6000 {
		pts = append(pts, privcluster.Point{rng.Float64(), rng.Float64()})
	}
	addrs := startShardServers(t, 2)

	place, err := parseRemote(strings.Join(addrs, ","))
	if err != nil {
		t.Fatal(err)
	}

	// -queries mode: remote output must equal the local handle's output.
	var local, remote bytes.Buffer
	if err := runQueries(&local, pts, "3000,3200", "", 4, 0.05, 0.1, 1024, 7, 0, false, nil, false); err != nil {
		t.Fatal(err)
	}
	if err := runQueries(&remote, pts, "3000,3200", "", 4, 0.05, 0.1, 1024, 7, 0, false, place, false); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("-queries releases differ:\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}

	// The "a|b" replica syntax: two replicas per partition must print the
	// exact same releases — the replication layer is invisible to output.
	extra := startShardServers(t, 2)
	replicated, err := parseRemote(addrs[0] + "|" + extra[0] + "," + addrs[1] + "|" + extra[1])
	if err != nil {
		t.Fatal(err)
	}
	var repl bytes.Buffer
	if err := runQueries(&repl, pts, "3000,3200", "", 4, 0.05, 0.1, 1024, 7, 0, false, replicated, false); err != nil {
		t.Fatal(err)
	}
	if local.String() != repl.String() {
		t.Errorf("replicated -queries releases differ:\nlocal:\n%s\nreplicated:\n%s", local.String(), repl.String())
	}

	// Single-shot and k-cover -remote paths: byte-identical to the same
	// seeded queries on a local handle.
	runLocal := func(t_, k int) string {
		t.Helper()
		var buf bytes.Buffer
		ds, err := privcluster.Open(pts, privcluster.DatasetOptions{GridSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		q := privcluster.QueryOptions{Epsilon: 4, Delta: 0.05, Beta: 0.1, Seed: 11}
		if k <= 1 {
			c, err := ds.FindCluster(context.Background(), t_, q)
			if err != nil {
				t.Fatal(err)
			}
			printCluster(&buf, c, pts)
		} else {
			cs, err := ds.FindClusters(context.Background(), k, t_, q)
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range cs {
				buf.WriteString("cluster ")
				buf.WriteString(string(rune('0' + i + 1)))
				buf.WriteString(":\n")
				printCluster(&buf, c, pts)
			}
		}
		return buf.String()
	}
	var buf bytes.Buffer
	if err := runHandle(&buf, pts, 3000, 1, 4, 0.05, 0.1, 1024, 11, 0, place, false); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), runLocal(3000, 1); got != want {
		t.Errorf("-remote single query differs:\nremote:\n%s\nlocal:\n%s", got, want)
	}
	buf.Reset()
	if err := runHandle(&buf, pts, 2500, 2, 4, 0.05, 0.1, 1024, 11, 0, place, false); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), runLocal(2500, 2); got != want {
		t.Errorf("-remote k-cover differs:\nremote:\n%s\nlocal:\n%s", got, want)
	}

	// A dead address list fails with a useful error instead of hanging.
	dead := &privcluster.Placement{Partitions: [][]string{{"127.0.0.1:1"}}}
	if err := runHandle(&buf, pts, 3000, 1, 4, 0.05, 0.1, 1024, 11, 0, dead, false); err == nil {
		t.Error("query against a dead shard address succeeded")
	}
}

func TestParseRemote(t *testing.T) {
	if got, err := parseRemote(""); got != nil || err != nil {
		t.Errorf("parseRemote(\"\") = %v, %v", got, err)
	}
	got, err := parseRemote(" a:1 , b:2 ")
	if err != nil || len(got.Partitions) != 2 ||
		got.Partitions[0][0] != "a:1" || got.Partitions[1][0] != "b:2" {
		t.Errorf("parseRemote flat = %v, %v", got, err)
	}
	got, err = parseRemote("a:1|b:2, c:3 | d:4")
	if err != nil || len(got.Partitions) != 2 ||
		strings.Join(got.Partitions[0], " ") != "a:1 b:2" ||
		strings.Join(got.Partitions[1], " ") != "c:3 d:4" {
		t.Errorf("parseRemote replicas = %v, %v", got, err)
	}
	if _, err := parseRemote("a:1|,b:2"); err == nil {
		t.Error("empty replica accepted")
	}
}

func TestResolvePlacement(t *testing.T) {
	if _, err := resolvePlacement("a:1", "file.json"); err == nil {
		t.Error("-remote with -placement accepted")
	}
	if p, err := resolvePlacement("", ""); p != nil || err != nil {
		t.Errorf("no flags: %v, %v", p, err)
	}
}
