package main

import (
	"strings"
	"testing"
)

func TestReadPointsBasic(t *testing.T) {
	in := strings.NewReader("0.1, 0.2\n0.3,0.4\n\n# comment\n0.5 ,0.6\n")
	pts, err := readPoints(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("read %d points, want 3", len(pts))
	}
	if pts[0][0] != 0.1 || pts[0][1] != 0.2 {
		t.Errorf("first point = %v", pts[0])
	}
	if pts[2][0] != 0.5 || pts[2][1] != 0.6 {
		t.Errorf("third point = %v", pts[2])
	}
}

func TestReadPointsErrors(t *testing.T) {
	if _, err := readPoints(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := readPoints(strings.NewReader("# only comments\n")); err == nil {
		t.Error("comment-only input accepted")
	}
	if _, err := readPoints(strings.NewReader("0.1,abc\n")); err == nil {
		t.Error("malformed float accepted")
	}
}

func TestReadPointsSingleColumn(t *testing.T) {
	pts, err := readPoints(strings.NewReader("0.5\n0.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(pts[0]) != 1 {
		t.Fatalf("pts = %v", pts)
	}
}

func TestFormatPoint(t *testing.T) {
	got := formatPoint([]float64{0.5, 0.25})
	if got != "(0.5, 0.25)" {
		t.Errorf("formatPoint = %q", got)
	}
}
