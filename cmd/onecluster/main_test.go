package main

import (
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"privcluster"
)

func TestReadPointsBasic(t *testing.T) {
	in := strings.NewReader("0.1, 0.2\n0.3,0.4\n\n# comment\n0.5 ,0.6\n")
	pts, err := readPoints(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("read %d points, want 3", len(pts))
	}
	if pts[0][0] != 0.1 || pts[0][1] != 0.2 {
		t.Errorf("first point = %v", pts[0])
	}
	if pts[2][0] != 0.5 || pts[2][1] != 0.6 {
		t.Errorf("third point = %v", pts[2])
	}
}

func TestReadPointsErrors(t *testing.T) {
	if _, err := readPoints(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := readPoints(strings.NewReader("# only comments\n")); err == nil {
		t.Error("comment-only input accepted")
	}
	if _, err := readPoints(strings.NewReader("0.1,abc\n")); err == nil {
		t.Error("malformed float accepted")
	}
}

func TestReadPointsSingleColumn(t *testing.T) {
	pts, err := readPoints(strings.NewReader("0.5\n0.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(pts[0]) != 1 {
		t.Fatalf("pts = %v", pts)
	}
}

func TestFormatPoint(t *testing.T) {
	got := formatPoint([]float64{0.5, 0.25})
	if got != "(0.5, 0.25)" {
		t.Errorf("formatPoint = %q", got)
	}
}

func TestParseQueries(t *testing.T) {
	ts, err := parseQueries("300, 400,500")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0] != 300 || ts[1] != 400 || ts[2] != 500 {
		t.Errorf("parseQueries = %v", ts)
	}
	for _, bad := range []string{"", "abc", "300,", "0", "-5", "300,-1"} {
		if _, err := parseQueries(bad); err == nil {
			t.Errorf("parseQueries(%q) accepted", bad)
		}
	}
}

func TestParseBudget(t *testing.T) {
	b, err := parseBudget("2.5,1e-5")
	if err != nil {
		t.Fatal(err)
	}
	if b.Epsilon != 2.5 || b.Delta != 1e-5 {
		t.Errorf("parseBudget = %+v", b)
	}
	if b, err := parseBudget(""); err != nil || !b.IsZero() {
		t.Errorf("empty budget = %+v, %v", b, err)
	}
	for _, bad := range []string{"2.5", "2.5,1e-5,3", "x,1e-5", "1,y"} {
		if _, err := parseBudget(bad); err == nil {
			t.Errorf("parseBudget(%q) accepted", bad)
		}
	}
}

// TestRunQueriesEndToEnd drives the handle path the new flags expose:
// several t values against one dataset under one budget, ending in a
// budget refusal when the cap is too small for all of them.
func TestRunQueriesEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]privcluster.Point, 0, 800)
	for i := 0; i < 500; i++ {
		pts = append(pts, privcluster.Point{0.4 + 0.02*rng.Float64(), 0.6 + 0.02*rng.Float64()})
	}
	for i := 0; i < 300; i++ {
		pts = append(pts, privcluster.Point{rng.Float64(), rng.Float64()})
	}
	// Two queries fit the ε budget of 8; the third is refused.
	err := runQueries(io.Discard, pts, "400,450,300", "8,0.2", 4, 0.05, 0.1, 1024, 7, 0, false, nil, false)
	if !errors.Is(err, privcluster.ErrBudgetExhausted) {
		t.Fatalf("three ε=4 queries against ε-budget 8: err = %v, want ErrBudgetExhausted", err)
	}
	// Unlimited budget runs all three.
	if err := runQueries(io.Discard, pts, "400,450,300", "", 4, 0.05, 0.1, 1024, 7, 0, false, nil, false); err != nil {
		t.Fatalf("unlimited budget: %v", err)
	}
	// The batch executor path: same queries concurrently, explicit shard
	// count, refusals reported per query instead of aborting the run.
	if err := runQueries(io.Discard, pts, "400,450,300", "8,0.2", 4, 0.05, 0.1, 1024, 7, 2, true, nil, false); err != nil {
		t.Fatalf("parallel with budget: %v", err)
	}
	if err := runQueries(io.Discard, pts, "400,450,300", "", 4, 0.05, 0.1, 1024, 7, 2, true, nil, false); err != nil {
		t.Fatalf("parallel unlimited: %v", err)
	}
}
