package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink run() writes into while
// the test polls it for the bound address.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`on (\S+)\n`)

// writeTestDeployment lays down a CSV and config in the module's
// feasible regime; the grant admits exactly two (ε=4, δ=0.05) queries.
func writeTestDeployment(t *testing.T, dir string) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var csv strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", 0.5+0.02*(rng.Float64()-0.5), 0.5+0.02*(rng.Float64()-0.5))
	}
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", rng.Float64(), rng.Float64())
	}
	csvPath := filepath.Join(dir, "points.csv")
	if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := map[string]any{
		"listen":     "127.0.0.1:0",
		"ledger_dir": filepath.Join(dir, "ledger"),
		"datasets":   []map[string]any{{"name": "planted", "csv": csvPath, "grid": 1024}},
		"principals": []map[string]any{{"name": "alice", "api_key": "k", "epsilon": 9, "delta": 0.11}},
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "config.json")
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath
}

// TestRunServesAndDrainsGracefully is the binary-level end-to-end test:
// run() comes up, serves an authenticated query, and on cancellation
// (the SIGTERM path) lets an in-flight query finish before returning.
func TestRunServesAndDrainsGracefully(t *testing.T) {
	dir := t.TempDir()
	cfgPath := writeTestDeployment(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-config", cfgPath}, &out) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon did not come up; output:\n%s", out.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	query := func() (int, string) {
		body := `{"dataset":"planted","t":400,"epsilon":4,"delta":0.05,"seed":7}`
		req, err := http.NewRequest("POST", "http://"+addr+"/v1/query/cluster", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", "k")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	if code, body := query(); code != http.StatusOK {
		t.Fatalf("first query: status %d body %s", code, body)
	}

	// Fire the second query and cancel the daemon while it is in
	// flight: graceful drain must let it finish with a real release.
	inflight := make(chan int, 1)
	go func() {
		code, _ := query()
		inflight <- code
	}()
	time.Sleep(20 * time.Millisecond) // let the query reach the handler
	cancel()
	select {
	case code := <-inflight:
		if code != http.StatusOK {
			t.Fatalf("in-flight query during drain: status %d", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight query never finished during drain")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("no drain message in output:\n%s", out.String())
	}
}

// TestRunRejectsBadConfig: a missing -config and an unreadable config
// fail up front with a useful error, not a panic or a hung daemon.
func TestRunRejectsBadConfig(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), nil, &out); err == nil {
		t.Fatal("run without -config succeeded")
	}
	if err := run(context.Background(), []string{"-config", filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Fatal("run with a missing config file succeeded")
	}
}
