// Command privclusterd is the serving daemon: an HTTP/JSON front end
// over prepared privcluster datasets, with every query's (ε, δ) cost
// admitted through a durable per-principal budget ledger that survives
// restarts and crashes (see internal/ledger). A budget refused once
// stays refused — restarting the daemon mints no fresh budget, and a
// second daemon pointed at the same ledger directory refuses to start,
// so two processes can never jointly over-spend.
//
// Usage:
//
//	privclusterd -config config.json
//
// The configuration is JSON:
//
//	{
//	  "listen": ":7610",
//	  "ledger_dir": "/var/lib/privclusterd/ledger",
//	  "datasets": [
//	    {"name": "points", "csv": "points.csv", "grid": 1024}
//	  ],
//	  "principals": [
//	    {"name": "alice", "api_key": "…", "epsilon": 9, "delta": 0.11}
//	  ]
//	}
//
// Endpoints (POST bodies and responses are JSON; authenticate with
// "Authorization: Bearer <api_key>" or "X-API-Key: <api_key>"):
//
//	POST /v1/query/cluster   {"dataset","t","epsilon","delta",...}  → one cluster
//	POST /v1/query/kcover    {"dataset","k","t",...}                → k clusters
//	POST /v1/query/interior  {"dataset","inner_n",...}              → interior point
//	POST /v1/query/batch     {"dataset","queries":[...]}            → per-query results
//	GET  /v1/budget                                                 → caller's durable balance
//	GET  /metrics                                                   → Prometheus text metrics
//	GET  /v1/trace/{id}                                             → retained span tree of a recent query
//	GET  /healthz                                                   → liveness
//
// Every query runs under a trace whose ID is returned in the
// X-Trace-Id response header; GET /v1/trace/<that id> returns the
// query's span tree (stage names, durations, operation counts — never
// data values). With "admin_listen" set in the config, a second
// listener serves net/http/pprof under /debug/pprof/.
//
// Query errors are typed: {"error":{"code":"budget_exhausted",...}}
// with HTTP 429 for refusals (the body carries the full accounting),
// 422 infeasible, 410 epoch_retired, 504 deadline, 401 unauthorized,
// 404 unknown_dataset, 400 bad_request.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// closes first, in-flight queries run to completion up to -grace, then
// the ledger lock is released for a successor.
//
// Trust boundary: the daemon holds raw data points; the differential
// privacy guarantee covers the released outputs. Deploy it inside the
// data's trust domain and protect the links. See the "Serving and
// durable budgets" section of the package documentation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"privcluster/internal/daemon"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "privclusterd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored for tests: it serves until ctx is
// cancelled, then drains gracefully. The actual listening address is
// printed to out (essential with "listen": ":0").
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("privclusterd", flag.ContinueOnError)
	configPath := fs.String("config", "", "JSON configuration file (required)")
	listen := fs.String("listen", "", "override the config's listen address")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown window for in-flight queries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	cfg, err := daemon.LoadConfig(*configPath)
	if err != nil {
		return err
	}
	if *listen != "" {
		cfg.Listen = *listen
	}

	srv, err := daemon.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(out, "privclusterd: serving %d datasets to %d principals on %s\n",
		len(cfg.Datasets), len(cfg.Principals), srv.Addr())
	if a := srv.AdminAddr(); a != "" {
		fmt.Fprintf(out, "privclusterd: admin (pprof) on %s\n", a)
	}

	<-ctx.Done()
	fmt.Fprintf(out, "privclusterd: shutting down (grace %s)\n", *grace)
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(out, "privclusterd: forced shutdown: %v\n", err)
	}
	return nil
}
