// Command shardctl generates and validates the JSON placement files that
// describe a replicated shard-server deployment (privcluster.Placement:
// one replica address set per partition, plus failover knobs). The files
// it writes are what cmd/onecluster's -placement flag and the
// privclusterd "placement" dataset block consume.
//
// Generate a placement — addresses are grouped left to right into
// partitions of -replicas each, so start shardservers in that order:
//
//	shardctl gen -replicas 2 a:7601 b:7601 c:7601 d:7601 > placement.json
//	shardctl gen -replicas 2 -hedge-ms 20 -probe-ms 2000 a:7601 b:7601
//
// Validate a file (exit status 0 iff it parses and describes a servable
// deployment; a summary is printed):
//
//	shardctl validate placement.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"privcluster"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Stdout, os.Args[2:])
	case "validate":
		err = runValidate(os.Stdout, os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  shardctl gen [-replicas R] [-retries N] [-hedge-ms M] [-probe-ms M] [-dial-timeout-ms M] [-o FILE] ADDR...
  shardctl validate FILE`)
}

// runGen builds a placement from the address list and writes its JSON to
// -o (stdout by default).
func runGen(out *os.File, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	replicas := fs.Int("replicas", 1, "replicas per partition; the addresses are grouped left to right and their count must divide evenly")
	retries := fs.Int("retries", 0, "per-connection transport retry budget (0 = default)")
	hedgeMS := fs.Int64("hedge-ms", 0, "hedged-read delay in milliseconds (0 = hedging off)")
	probeMS := fs.Int64("probe-ms", 0, "down-replica re-probe interval in milliseconds (0 = default, negative = off)")
	dialMS := fs.Int64("dial-timeout-ms", 0, "dial+handshake timeout in milliseconds (0 = default)")
	output := fs.String("o", "", "output file (empty = stdout)")
	fs.Parse(args)

	addrs := fs.Args()
	if len(addrs) == 0 {
		return fmt.Errorf("gen needs at least one shard-server address")
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1")
	}
	if len(addrs)%*replicas != 0 {
		return fmt.Errorf("%d addresses do not divide into partitions of %d replicas", len(addrs), *replicas)
	}
	p := &privcluster.Placement{
		Retries:       *retries,
		HedgeDelay:    time.Duration(*hedgeMS) * time.Millisecond,
		ProbeInterval: time.Duration(*probeMS) * time.Millisecond,
		DialTimeout:   time.Duration(*dialMS) * time.Millisecond,
	}
	for i := 0; i < len(addrs); i += *replicas {
		p.Partitions = append(p.Partitions, addrs[i:i+*replicas])
	}
	data, err := p.EncodeJSON()
	if err != nil {
		return err
	}
	if *output != "" {
		return os.WriteFile(*output, data, 0o644)
	}
	_, err = out.Write(data)
	return err
}

// runValidate loads the file through the same parser every consumer uses
// and prints what it describes.
func runValidate(out *os.File, args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("validate takes exactly one placement file")
	}
	p, err := privcluster.LoadPlacement(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprint(out, summarize(p))
	return nil
}

// summarize renders the human-readable validation report.
func summarize(p *privcluster.Placement) string {
	var b strings.Builder
	total := 0
	for _, reps := range p.Partitions {
		total += len(reps)
	}
	fmt.Fprintf(&b, "valid: %d partitions, %d replicas\n", len(p.Partitions), total)
	for i, reps := range p.Partitions {
		fmt.Fprintf(&b, "  partition %d: %s\n", i, strings.Join(reps, ", "))
	}
	if p.Retries != 0 {
		fmt.Fprintf(&b, "  retries: %d\n", p.Retries)
	}
	if p.HedgeDelay > 0 {
		fmt.Fprintf(&b, "  hedge delay: %v\n", p.HedgeDelay)
	}
	if p.ProbeInterval != 0 {
		fmt.Fprintf(&b, "  probe interval: %v\n", p.ProbeInterval)
	}
	if p.DialTimeout != 0 {
		fmt.Fprintf(&b, "  dial timeout: %v\n", p.DialTimeout)
	}
	return b.String()
}
