package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privcluster"
)

// TestGenValidateRoundTrip: gen writes a file validate accepts, and the
// parsed placement has the requested shape and knobs.
func TestGenValidateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placement.json")
	err := runGen(nil, []string{
		"-replicas", "2", "-hedge-ms", "20", "-probe-ms", "2000", "-o", path,
		"a:7601", "b:7601", "c:7601", "d:7601",
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := privcluster.LoadPlacement(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Partitions) != 2 || len(p.Partitions[0]) != 2 ||
		p.Partitions[0][0] != "a:7601" || p.Partitions[1][1] != "d:7601" {
		t.Fatalf("gen produced %+v", p.Partitions)
	}
	if p.HedgeDelay.Milliseconds() != 20 || p.ProbeInterval.Milliseconds() != 2000 {
		t.Fatalf("gen lost knobs: %+v", p)
	}
	report := summarize(p)
	if !strings.Contains(report, "2 partitions, 4 replicas") ||
		!strings.Contains(report, "a:7601, b:7601") {
		t.Fatalf("summary: %q", report)
	}
	if err := runValidate(os.Stdout, []string{path}); err != nil {
		t.Fatalf("validate rejected gen's output: %v", err)
	}
}

// TestGenRejections: malformed invocations fail instead of writing
// half-valid files.
func TestGenRejections(t *testing.T) {
	for name, args := range map[string][]string{
		"no addresses":    {"-replicas", "1"},
		"uneven grouping": {"-replicas", "2", "a", "b", "c"},
		"zero replicas":   {"-replicas", "0", "a"},
	} {
		if err := runGen(nil, args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestValidateRejections: a broken file exits nonzero through the error
// path, with the parse failure surfaced.
func TestValidateRejections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"partitions": [[]], "typo": 1}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := runValidate(os.Stdout, []string{path}); err == nil {
		t.Error("validate accepted a file with an empty partition and unknown field")
	}
	if err := runValidate(os.Stdout, []string{filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("validate accepted a missing file")
	}
	if err := runValidate(os.Stdout, nil); err == nil {
		t.Error("validate accepted no arguments")
	}
}
