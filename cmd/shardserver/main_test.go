package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/transport"
)

// syncBuffer is a concurrency-safe output sink for the daemon under test.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs the daemon body on a free port and returns its address
// and a cancel that triggers (and waits for) graceful shutdown.
func startDaemon(t *testing.T, args ...string) (addr string, shutdown func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return addr, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon shutdown: %v\n%s", err, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Errorf("daemon did not shut down\n%s", out.String())
		}
	}
}

func testConfig(t *testing.T, n int) geometry.ShardConfig {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	grid, err := geometry.NewGrid(1<<12, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = []float64{rng.Float64(), rng.Float64()}
	}
	prepared, err := prepare(raw, 1<<12, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]int32, 0, n/2)
	for i := 0; i < n; i += 2 {
		members = append(members, int32(i))
	}
	return geometry.ShardConfig{
		Points:  prepared,
		Members: members,
		Cell:    geometry.CellIndexOptions{MinRadius: grid.RadiusUnit(), MaxRadius: grid.MaxDistance()},
	}
}

// TestDaemonServesAndShutsDown: the daemon comes up on :0, serves a real
// TCP shard session end to end, and exits cleanly on context cancel (the
// SIGINT/SIGTERM path).
func TestDaemonServesAndShutsDown(t *testing.T) {
	addr, shutdown := startDaemon(t)
	cfg := testConfig(t, 200)
	rs, err := transport.DialShard(context.Background(), addr, cfg, transport.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dup, err := rs.DupCounts(context.Background(), geometry.EpochFrozen)
	if err != nil {
		t.Fatal(err)
	}
	if len(dup) != cfg.Points.N() {
		t.Fatalf("dup table has %d slots, want %d", len(dup), cfg.Points.N())
	}
	counts, err := rs.PartialCounts(context.Background(), geometry.EpochFrozen, 0, cfg.Cell.MinRadius, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != cfg.Points.N() {
		t.Fatalf("partials have %d slots, want %d", len(counts), cfg.Points.N())
	}
	rs.Close()
	shutdown()
	if _, err := transport.DialShard(context.Background(), addr, cfg, transport.Options{
		Retries: -1, DialTimeout: time.Second,
	}); err == nil {
		t.Error("dial succeeded after daemon shutdown")
	}
}

// TestDaemonPreloadedCSV: the -csv path — the daemon prepares the CSV with
// the same grid/domain transformation the client applies, an omit-points
// handshake matches via the checksum, and a client prepared with a
// different grid is refused instead of silently served different data.
func TestDaemonPreloadedCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	raw := make([][]float64, 300)
	var csv strings.Builder
	for i := range raw {
		raw[i] = []float64{rng.Float64(), rng.Float64()}
		fmt.Fprintf(&csv, "%v,%v\n", raw[i][0], raw[i][1])
	}
	path := filepath.Join(t.TempDir(), "points.csv")
	if err := os.WriteFile(path, []byte(csv.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startDaemon(t, "-csv", path, "-grid", "4096")
	defer shutdown()

	grid, _ := geometry.NewGrid(1<<12, 2)
	prepared, err := prepare(raw, 1<<12, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]int32, prepared.N())
	for i := range members {
		members[i] = int32(i)
	}
	cfg := geometry.ShardConfig{
		Points:  prepared,
		Members: members,
		Cell:    geometry.CellIndexOptions{MinRadius: grid.RadiusUnit(), MaxRadius: grid.MaxDistance()},
	}
	rs, err := transport.DialShard(context.Background(), addr, cfg, transport.Options{OmitPoints: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// The omit-points answers must match a points-shipping session bit
	// for bit.
	rs2, err := transport.DialShard(context.Background(), addr, cfg, transport.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	a, err := rs.PartialCounts(context.Background(), geometry.EpochFrozen, 2, 4*grid.RadiusUnit(), 50, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rs2.PartialCounts(context.Background(), geometry.EpochFrozen, 2, 4*grid.RadiusUnit(), 50, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("preloaded counts[%d] = %d, points-shipping session says %d", i, a[i], b[i])
		}
	}

	// A client that prepared the same CSV on a different grid must be
	// refused by the checksum, not served silently-different data.
	other, err := prepare(raw, 1<<10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	badCfg := cfg
	badCfg.Points = other
	_, err = transport.DialShard(context.Background(), addr, badCfg, transport.Options{OmitPoints: true})
	var te *transport.Error
	if !errors.As(err, &te) || te.Kind != transport.KindRemote {
		t.Fatalf("grid-mismatched preload: err = %v, want KindRemote", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("mismatch error does not mention the checksum: %v", err)
	}
}

// TestPrepareMatchesDatasetOpen: the daemon's CSV preparation must be the
// same transformation the client library applies, or the preload path
// would never checksum-match.
func TestPrepareMatchesDatasetOpen(t *testing.T) {
	raw := [][]float64{{3.25}, {7.5}, {-2}, {9.999}}
	prepared, err := prepare(raw, 1<<16, -10, 10)
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := geometry.NewGrid(1<<16, 1)
	for i, p := range raw {
		u := (p[0] - (-10)) / 20
		q := grid.Quantize([]float64{u})
		if prepared.At(i, 0) != q[0] {
			t.Errorf("prepare(%v) = %v, want %v", p, prepared.At(i, 0), q[0])
		}
	}
	if _, err := prepare(raw, 1<<16, 5, 5); err == nil {
		t.Error("degenerate domain accepted")
	}
}
