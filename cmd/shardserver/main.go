// Command shardserver is the remote-shard daemon: it hosts ball-index
// shards behind the wire protocol (see internal/transport) so a client's
// ShardedIndex can sum its partial counts across machines.
//
// Usage:
//
//	shardserver -addr :7601
//	shardserver -addr :7601 -csv points.csv -grid 65536
//	shardserver -addr :7601 -admin 127.0.0.1:7699
//
// With -admin a second listener serves the process metrics
// (Prometheus text on /metrics: fan-out latency, cache and replica
// counters) and net/http/pprof under /debug/pprof/. Bind it to a
// loopback or otherwise access-controlled address. Traced client
// sessions (wire protocol v3) are announced on the log with their
// 128-bit trace ID, so one query can be followed from the client's
// span tree into every shard server it touched.
//
// Without -csv the server is stateless: each client connection ships the
// prepared global point set in its handshake and the server builds the
// requested shard from it. With -csv the server preloads the data — it
// reads the CSV (one point per line, comma-separated coordinates),
// applies exactly the client-side preparation (affine map from
// [-min, -max] onto the unit cube, then snapping onto the -grid lattice),
// and clients connecting with the omit-points handshake skip the payload;
// a checksum in the handshake guards against a server whose -csv/-grid/
// domain flags prepared different coordinates than the client did.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: listeners close
// first, in-flight requests run to completion up to -grace, then
// remaining connections are cut.
//
// Trust boundary: a shard server holds raw data points. The differential
// privacy guarantee applies to the released outputs of the client-side
// pipeline, not to intra-cluster traffic or server memory — deploy shard
// servers inside the same trust domain as the data and protect the links
// (TLS/mTLS tunnels, private networks). See the "Remote shards" section
// of the package documentation.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/obs"
	"privcluster/internal/transport"
	"privcluster/internal/vec"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shardserver:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored for tests: it serves until ctx is
// cancelled, then shuts down gracefully. The actual listening address is
// printed to out (essential with -addr :0).
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shardserver", flag.ContinueOnError)
	addr := fs.String("addr", ":7601", "TCP address to listen on")
	csv := fs.String("csv", "", "CSV of points to preload (empty = points arrive per connection)")
	gridSize := fs.Int64("grid", 1<<16, "|X|: grid values per axis the preloaded points are snapped to (must match the client)")
	domainMin := fs.Float64("min", 0, "domain lower bound of the preloaded points (must match the client)")
	domainMax := fs.Float64("max", 0, "domain upper bound (0,0 = unit cube; must match the client)")
	workers := fs.Int("workers", 0, "worker-pool bound for the hosted shards' count passes (0 = GOMAXPROCS)")
	admin := fs.String("admin", "", "admin TCP address serving /metrics and /debug/pprof/ (empty = disabled; bind to loopback)")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown window for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var points *vec.Frame
	if *csv != "" {
		f, err := os.Open(*csv)
		if err != nil {
			return err
		}
		raw, err := readPoints(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *csv, err)
		}
		points, err = prepare(raw, *gridSize, *domainMin, *domainMax)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "shardserver: preloaded %d points of dimension %d (grid %d)\n",
			points.N(), points.Dim(), *gridSize)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "shardserver: listening on %s\n", l.Addr())

	srv := transport.NewServer(transport.ServerOptions{
		Points:  points,
		Workers: *workers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
		// Traced sessions (wire protocol v3 clients propagating a trace
		// ID) are announced through the structured logger so an operator
		// can grep the client's trace ID across machines.
		Log: obs.NewLogger(out, slog.LevelInfo, 0),
	})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	if *admin != "" {
		amux := http.NewServeMux()
		amux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			obs.Default.WriteText(w)
		})
		amux.HandleFunc("/debug/pprof/", pprof.Index)
		amux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		amux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		amux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		amux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			l.Close()
			return fmt.Errorf("admin listen %s: %w", *admin, err)
		}
		defer aln.Close()
		fmt.Fprintf(out, "shardserver: admin (metrics, pprof) on %s\n", aln.Addr())
		go http.Serve(aln, amux)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "shardserver: shutting down (grace %s)\n", *grace)
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(out, "shardserver: forced shutdown: %v\n", err)
	}
	return nil
}

// prepare applies the client-side data preparation to raw CSV points:
// affine map onto the unit cube, then grid quantization — the same
// transformation privcluster.Open performs, so the preloaded coordinates
// are bit-identical to what a client with matching options would ship.
func prepare(raw [][]float64, gridSize int64, min, max float64) (*vec.Frame, error) {
	if (min != 0 || max != 0) && max <= min {
		return nil, fmt.Errorf("domain bounds -max %v ≤ -min %v", max, min)
	}
	span := 1.0
	if min != 0 || max != 0 {
		span = max - min
	}
	d := len(raw[0])
	grid, err := geometry.NewGrid(gridSize, d)
	if err != nil {
		return nil, err
	}
	out := vec.NewFrame(len(raw), d)
	u := make(vec.Vector, d)
	for i, p := range raw {
		if len(p) != d {
			return nil, fmt.Errorf("point %d has dimension %d, want %d", i, len(p), d)
		}
		for j, x := range p {
			u[j] = (x - min) / span
		}
		grid.QuantizeInto(u, u)
		out.SetRow(i, u)
	}
	return out, nil
}

// readPoints parses the CSV format cmd/onecluster reads: one point per
// line, comma-separated coordinates, blank lines and #-comments skipped.
func readPoints(r io.Reader) ([][]float64, error) {
	var points [][]float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		p := make([]float64, len(fields))
		for i, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			p[i] = x
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("no points in input")
	}
	return points, nil
}
