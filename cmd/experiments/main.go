// Command experiments regenerates every table and figure reproduced from
// "Locating a Small Cluster Privately" (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	experiments -exp all            # everything (a few minutes)
//	experiments -exp table1        # one artifact
//	experiments -exp fig1 -quick   # reduced sizes
//	experiments -list              # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"privcluster/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	seed := flag.Int64("seed", 1, "random seed (results are deterministic per seed)")
	quick := flag.Bool("quick", false, "reduced sizes for a fast pass")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Artifact)
		}
		return
	}

	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		fmt.Printf("### %s (%s)\n\n", e.Artifact, e.ID)
		start := time.Now()
		tables := e.Run(*seed, *quick)
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("[%s completed in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
