// Command benchgate is the CI benchmark-regression gate: it compares two
// files of `go test -bench` output (a checked-in baseline and the current
// run) and exits nonzero when any benchmark present in both regressed by
// more than the threshold on a gated metric.
//
// Usage:
//
//	benchgate -baseline bench/baseline.txt -current bench_pr.txt [-threshold 20] [-metrics ns/op,allocs/op,B/op]
//
// Per benchmark and metric the gate compares medians across the repeated
// runs (-count=N), so a single noisy sample cannot fail the job; the
// GOMAXPROCS suffix (`-8`) is stripped from benchmark names so baselines
// transfer across machine shapes. allocs/op and B/op are deterministic and
// therefore the most portable gated metrics (B/op catches a few large
// buffers replacing many small ones, which allocs/op alone would miss);
// ns/op comparisons are only meaningful against a baseline recorded on
// comparable hardware (see bench/README.md for the refresh procedure and
// the CI override label).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one metric observation of one benchmark run line.
type sample struct {
	name   string // benchmark name, GOMAXPROCS suffix stripped
	metric string // e.g. "ns/op", "allocs/op"
	value  float64
}

// benchLine matches a Go benchmark result line: name, iteration count,
// then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix strips the trailing -N the testing package appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads benchmark output, returning all metric samples.
func parseBench(path string) ([]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []sample
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			out = append(out, sample{name: name, metric: fields[i+1], value: v})
		}
	}
	return out, sc.Err()
}

// medians folds samples into per-(benchmark, metric) medians.
func medians(samples []sample) map[string]map[string]float64 {
	vals := make(map[string]map[string][]float64)
	for _, s := range samples {
		if vals[s.name] == nil {
			vals[s.name] = make(map[string][]float64)
		}
		vals[s.name][s.metric] = append(vals[s.name][s.metric], s.value)
	}
	out := make(map[string]map[string]float64, len(vals))
	for name, byMetric := range vals {
		out[name] = make(map[string]float64, len(byMetric))
		for metric, xs := range byMetric {
			sort.Float64s(xs)
			if len(xs)%2 == 1 {
				out[name][metric] = xs[len(xs)/2]
			} else {
				out[name][metric] = (xs[len(xs)/2-1] + xs[len(xs)/2]) / 2
			}
		}
	}
	return out
}

// delta is one gated comparison.
type delta struct {
	name, metric       string
	baseline, current  float64
	pct                float64 // signed percent change (positive = worse)
	regressed, missing bool
}

// compare gates current against baseline on the given metrics at the
// threshold (percent). Benchmarks only in the baseline are flagged
// missing — a gate failure, since a benchmark that crashed or was renamed
// without a baseline refresh must not silently drop out of the gate
// (report treats missing as failed). Benchmarks only in the current run
// are ungated (new, no baseline yet).
func compare(baseline, current map[string]map[string]float64, metrics []string, thresholdPct float64) []delta {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []delta
	for _, name := range names {
		cur, ok := current[name]
		if !ok {
			out = append(out, delta{name: name, missing: true})
			continue
		}
		for _, metric := range metrics {
			b, okB := baseline[name][metric]
			c, okC := cur[metric]
			if !okB || !okC {
				continue
			}
			d := delta{name: name, metric: metric, baseline: b, current: c}
			if b > 0 {
				d.pct = (c - b) / b * 100
			} else if c > 0 {
				d.pct = 100
			}
			d.regressed = d.pct > thresholdPct
			out = append(out, d)
		}
	}
	return out
}

// report renders the comparison and returns whether the gate failed.
func report(w *os.File, deltas []delta, thresholdPct float64) bool {
	failed := false
	for _, d := range deltas {
		switch {
		case d.missing:
			failed = true
			fmt.Fprintf(w, "FAIL  %s: in baseline but not in current run — crashed benchmark or un-refreshed rename; update bench/baseline.txt\n", d.name)
		case d.regressed:
			failed = true
			fmt.Fprintf(w, "FAIL  %s %s: %.6g -> %.6g (%+.1f%%, threshold +%.0f%%)\n",
				d.name, d.metric, d.baseline, d.current, d.pct, thresholdPct)
		default:
			fmt.Fprintf(w, "ok    %s %s: %.6g -> %.6g (%+.1f%%)\n",
				d.name, d.metric, d.baseline, d.current, d.pct)
		}
	}
	return failed
}

func main() {
	baselinePath := flag.String("baseline", "bench/baseline.txt", "checked-in baseline benchmark output")
	currentPath := flag.String("current", "", "benchmark output of the current run (required)")
	threshold := flag.Float64("threshold", 20, "maximum tolerated regression, percent")
	metricsFlag := flag.String("metrics", "ns/op,allocs/op,B/op", "comma-separated metrics to gate")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := parseBench(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := parseBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark lines in baseline %s\n", *baselinePath)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark lines in current %s\n", *currentPath)
		os.Exit(2)
	}
	metrics := strings.Split(*metricsFlag, ",")
	for i := range metrics {
		metrics[i] = strings.TrimSpace(metrics[i])
	}
	deltas := compare(medians(base), medians(cur), metrics, *threshold)
	if report(os.Stdout, deltas, *threshold) {
		fmt.Fprintf(os.Stderr, "benchgate: regression beyond %.0f%% — if intentional, apply the perf-regression-ok label and refresh bench/baseline.txt (see bench/README.md)\n", *threshold)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions beyond threshold")
}
