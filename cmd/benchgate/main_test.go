package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineOut = `
goos: linux
BenchmarkDatasetReuse/warm-4   120   10000000 ns/op   500000 B/op   273 allocs/op
BenchmarkDatasetReuse/warm-4   118   10100000 ns/op   500100 B/op   273 allocs/op
BenchmarkDatasetReuse/warm-4   121    9900000 ns/op   499900 B/op   273 allocs/op
BenchmarkShardedBuild/n=100000/shards=4-4   1   5000000000 ns/op   600000000 B/op   5000000 allocs/op
PASS
`

func TestParseBenchAndMedians(t *testing.T) {
	path := writeBench(t, "base.txt", baselineOut)
	samples, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	med := medians(samples)
	warm, ok := med["BenchmarkDatasetReuse/warm"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: have %v", med)
	}
	if warm["ns/op"] != 10000000 {
		t.Errorf("median ns/op = %v, want 1e7", warm["ns/op"])
	}
	if warm["allocs/op"] != 273 {
		t.Errorf("median allocs/op = %v", warm["allocs/op"])
	}
	if _, ok := med["BenchmarkShardedBuild/n=100000/shards=4"]; !ok {
		t.Errorf("sub-benchmark name lost: %v", med)
	}
}

// The acceptance check of the satellite: a synthetic >20% time regression
// must fail the gate, and the same data with allocs inflated past 20% must
// fail on allocs/op — while changes inside the threshold pass.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	base := medians(mustParse(t, writeBench(t, "base.txt", baselineOut)))
	metrics := []string{"ns/op", "allocs/op"}

	regressed := `
BenchmarkDatasetReuse/warm-8   100   12500000 ns/op   500000 B/op   273 allocs/op
BenchmarkShardedBuild/n=100000/shards=4-8   1   5000000000 ns/op   600000000 B/op   5000000 allocs/op
`
	deltas := compare(base, medians(mustParse(t, writeBench(t, "bad.txt", regressed))), metrics, 20)
	if !anyRegressed(deltas) {
		t.Error("a +25% warm-query time regression passed the 20% gate")
	}

	allocRegressed := `
BenchmarkDatasetReuse/warm-8   120   10000000 ns/op   500000 B/op   400 allocs/op
BenchmarkShardedBuild/n=100000/shards=4-8   1   5000000000 ns/op   600000000 B/op   5000000 allocs/op
`
	deltas = compare(base, medians(mustParse(t, writeBench(t, "allocs.txt", allocRegressed))), metrics, 20)
	if !anyRegressed(deltas) {
		t.Error("a +47% allocs/op regression passed the 20% gate")
	}

	within := `
BenchmarkDatasetReuse/warm-8   110   11500000 ns/op   500000 B/op   300 allocs/op
BenchmarkShardedBuild/n=100000/shards=4-8   1   4000000000 ns/op   600000000 B/op   5200000 allocs/op
`
	deltas = compare(base, medians(mustParse(t, writeBench(t, "ok.txt", within))), metrics, 20)
	if anyRegressed(deltas) {
		t.Errorf("a +15%%/+10%% change failed the 20%% gate: %+v", deltas)
	}
}

// A single outlier among repeated runs must not fail the gate: medians,
// not maxima, are compared.
func TestGateIgnoresSingleOutlier(t *testing.T) {
	base := medians(mustParse(t, writeBench(t, "base.txt", baselineOut)))
	noisy := `
BenchmarkDatasetReuse/warm-8   100   50000000 ns/op   500000 B/op   273 allocs/op
BenchmarkDatasetReuse/warm-8   120   10000000 ns/op   500000 B/op   273 allocs/op
BenchmarkDatasetReuse/warm-8   119   10050000 ns/op   500000 B/op   273 allocs/op
BenchmarkShardedBuild/n=100000/shards=4-8   1   5000000000 ns/op   600000000 B/op   5000000 allocs/op
`
	deltas := compare(base, medians(mustParse(t, writeBench(t, "noisy.txt", noisy))), []string{"ns/op", "allocs/op"}, 20)
	if anyRegressed(deltas) {
		t.Errorf("one outlier among five runs failed the gate: %+v", deltas)
	}
}

// Benchmarks present only in the baseline fail the gate (a crashed
// benchmark or un-refreshed rename must not silently drop out of it);
// benchmarks only in the current run are ungated.
func TestGateMissingBenchmarks(t *testing.T) {
	base := medians(mustParse(t, writeBench(t, "base.txt", baselineOut)))
	current := `
BenchmarkDatasetReuse/warm-8   120   10000000 ns/op   500000 B/op   273 allocs/op
BenchmarkBrandNew-8   10   1000 ns/op   0 B/op   0 allocs/op
`
	deltas := compare(base, medians(mustParse(t, writeBench(t, "cur.txt", current))), []string{"ns/op"}, 20)
	missing := false
	for _, d := range deltas {
		if d.missing && d.name == "BenchmarkShardedBuild/n=100000/shards=4" {
			missing = true
		}
		if d.name == "BenchmarkBrandNew" {
			t.Errorf("new benchmark gated without a baseline: %+v", d)
		}
	}
	if !missing {
		t.Error("baseline-only benchmark not flagged as missing")
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if !report(devnull, deltas, 20) {
		t.Error("a baseline-only (missing) benchmark did not fail the gate")
	}
}

func mustParse(t *testing.T, path string) []sample {
	t.Helper()
	s, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func anyRegressed(deltas []delta) bool {
	for _, d := range deltas {
		if d.regressed {
			return true
		}
	}
	return false
}
