// Package privcluster is a from-scratch Go implementation of
//
//	Kobbi Nissim, Uri Stemmer, Salil Vadhan.
//	"Locating a Small Cluster Privately." PODS 2016.
//
// It provides (ε, δ)-differentially private solutions to the 1-cluster
// problem: given n points in a discretized d-dimensional unit cube and a
// target size t, find a small ball containing at least ≈ t of the points,
// without leaking any individual point. The headline algorithm — GoodRadius
// followed by GoodCenter (Theorem 3.2 of the paper) — handles minority-size
// clusters (t sublinear in n and only 2^{O(log*|X|)} in the domain size) and
// approximates the optimal radius within O(√log n), independent of the
// dimension.
//
// On top of the 1-cluster solver the package exposes the paper's derived
// constructions: k-ball covering (Observation 3.5), private interior-point
// location (Algorithm 3, the reduction behind the Section 5 lower bound),
// and the sample-and-aggregate compiler (Algorithm SA, Section 6) that turns
// arbitrary non-private analyses into private ones.
//
// # Quick start
//
//	points := ... // [][]float64 in [0,1]^d
//	cluster, err := privcluster.FindCluster(points, 400, privcluster.Options{
//		Epsilon: 4, Delta: 0.05, Seed: 1,
//	})
//	// cluster.Center, cluster.Radius describe a ball holding ≈ 400 points.
//
// The module path is privcluster (see go.mod); import the root package as
// `import "privcluster"`.
//
// # Scaling and index backends
//
// The pipeline's preprocessing runs on one of two interchangeable ball
// indexes (Options.IndexPolicy):
//
//   - IndexExact materializes all n² pairwise distances. Exact counts and
//     score function, Θ(n²) memory — viable for n in the low thousands.
//   - IndexScalable buckets points into a cell hash per radius scale and
//     resolves ball counts by per-cell candidate pruning: O(n·d) memory
//     and near-linear preprocessing, at the cost of a bounded
//     approximation in the radius search (the released radius can be a
//     small constant factor wider; privacy is entirely unaffected).
//   - IndexAuto (default) picks IndexExact up to a few thousand points and
//     IndexScalable beyond, so FindCluster handles 10⁵–10⁶ points without
//     ever allocating the quadratic matrix.
//
// GoodCenter's box-partition loop — one O(n·k) count pass per
// sparse-vector repetition — runs on a packed-key engine: per-axis cell
// indices are bit-packed into a single uint64 (hash-combined when they
// exceed 64 bits), and every histogram and buffer is reused across
// repetitions, with the count pass fanned out over Options.Workers
// goroutines. Options.BoxPacking selects the engine; the exact backends
// (packed and the legacy string keys) provably release bit-identical
// results under the same seed, and the hashed backend matches them barring
// a ≈ 2⁻⁶⁴-probability key collision (which merges two boxes — a utility
// blip, never a privacy one), so both knobs are pure performance tuning.
//
// # Errors and the feasible t/ε regime
//
// The private selections inside the pipeline release results only above
// noise thresholds that scale as (1/ε)·log(1/δ): GoodRadius's RecConcave
// search demands a quality promise Γ (Theorem 4.3's 8^{log*|X|} expression,
// capped at a fraction of t by the default profile), and its block release
// plus GoodCenter's stability-based box choice each need counts of order
// (1/ε)·log(1/δ) to fire. When t is within a small factor of Γ the run
// fails regardless of the data — historically as a bare, flaky promise
// violation after the budget was spent.
//
// Two mechanisms make that regime visible:
//
//   - FindCluster and FindClusters pre-flight the parameters and return an
//     error wrapping ErrInfeasible (with the concrete floor and which of
//     t/ε/δ/β to adjust) when t sits below the feasibility floor —
//     evaluated at the per-round budget for FindClusters, since k-cover
//     splits (ε, δ) across rounds. The floor is a pure function of the
//     parameters; the only data consulted is the duplicate structure, so a
//     dataset with ≈ t duplicated points (which succeeds through the
//     radius-zero path at any t) is never rejected. The uncapped paper
//     profile (Options.Paper) is exempt: its infeasibility at practical
//     scale is categorical and documented, not flaky. As a reference
//     point, the defaults (ε = 1, δ = 10⁻⁶, |X| = 2¹⁶) put the floor near
//     t ≈ 2000.
//   - Promise failures that do occur carry a typed diagnostic
//     (internal/recconcave.PromiseError) whose message reports the promise
//     Γ, the recursion depth, the per-level (ε, δ), and the t − 4Γ slack —
//     distinguishing "no cluster exists" from "this regime is infeasible".
//
// See the examples/ directory for runnable programs (examples/scale runs
// n = 200,000) and DESIGN.md for the system inventory, the
// paper-vs-implementation substitutions, and the experiment index.
// EXPERIMENTS.md reports paper-vs-measured results for every table and
// figure.
//
// # Privacy disclaimer
//
// This is a research reproduction. Noise is generated with math/rand
// (seedable for reproducibility — which a production DP deployment must
// never allow) and floating-point side channels are not mitigated.
package privcluster
