// Package privcluster is a from-scratch Go implementation of
//
//	Kobbi Nissim, Uri Stemmer, Salil Vadhan.
//	"Locating a Small Cluster Privately." PODS 2016.
//
// It provides (ε, δ)-differentially private solutions to the 1-cluster
// problem: given n points in a discretized d-dimensional unit cube and a
// target size t, find a small ball containing at least ≈ t of the points,
// without leaking any individual point. The headline algorithm — GoodRadius
// followed by GoodCenter (Theorem 3.2 of the paper) — handles minority-size
// clusters (t sublinear in n and only 2^{O(log*|X|)} in the domain size) and
// approximates the optimal radius within O(√log n), independent of the
// dimension.
//
// On top of the 1-cluster solver the package exposes the paper's derived
// constructions: k-ball covering (Observation 3.5), private interior-point
// location (Algorithm 3, the reduction behind the Section 5 lower bound),
// and the sample-and-aggregate compiler (Algorithm SA, Section 6) that turns
// arbitrary non-private analyses into private ones.
//
// # Quick start
//
//	points := ... // [][]float64 in [0,1]^d
//	cluster, err := privcluster.FindCluster(points, 400, privcluster.Options{
//		Epsilon: 4, Delta: 0.05, Seed: 1,
//	})
//	// cluster.Center, cluster.Radius describe a ball holding ≈ 400 points.
//
// The module path is privcluster (see go.mod); import the root package as
// `import "privcluster"`.
//
// # Scaling and index backends
//
// The pipeline's preprocessing runs on one of two interchangeable ball
// indexes (Options.IndexPolicy):
//
//   - IndexExact materializes all n² pairwise distances. Exact counts and
//     score function, Θ(n²) memory — viable for n in the low thousands.
//   - IndexScalable buckets points into a cell hash per radius scale and
//     resolves ball counts by per-cell candidate pruning: O(n·d) memory
//     and near-linear preprocessing, at the cost of a bounded
//     approximation in the radius search (the released radius can be a
//     small constant factor wider; privacy is entirely unaffected).
//   - IndexAuto (default) picks IndexExact up to a few thousand points and
//     IndexScalable beyond, so FindCluster handles 10⁵–10⁶ points without
//     ever allocating the quadratic matrix.
//
// See the examples/ directory for runnable programs (examples/scale runs
// n = 200,000) and DESIGN.md for the system inventory, the
// paper-vs-implementation substitutions, and the experiment index.
// EXPERIMENTS.md reports paper-vs-measured results for every table and
// figure.
//
// # Privacy disclaimer
//
// This is a research reproduction. Noise is generated with math/rand
// (seedable for reproducibility — which a production DP deployment must
// never allow) and floating-point side channels are not mitigated.
package privcluster
