// Package privcluster is a from-scratch Go implementation of
//
//	Kobbi Nissim, Uri Stemmer, Salil Vadhan.
//	"Locating a Small Cluster Privately." PODS 2016.
//
// It provides (ε, δ)-differentially private solutions to the 1-cluster
// problem: given n points in a discretized d-dimensional unit cube and a
// target size t, find a small ball containing at least ≈ t of the points,
// without leaking any individual point. The headline algorithm — GoodRadius
// followed by GoodCenter (Theorem 3.2 of the paper) — handles minority-size
// clusters (t sublinear in n and only 2^{O(log*|X|)} in the domain size) and
// approximates the optimal radius within O(√log n), independent of the
// dimension.
//
// On top of the 1-cluster solver the package exposes the paper's derived
// constructions: k-ball covering (Observation 3.5), private interior-point
// location (Algorithm 3, the reduction behind the Section 5 lower bound),
// and the sample-and-aggregate compiler (Algorithm SA, Section 6) that turns
// arbitrary non-private analyses into private ones.
//
// # Quick start
//
//	points := ... // [][]float64 in [0,1]^d
//	cluster, err := privcluster.FindCluster(points, 400, privcluster.Options{
//		Epsilon: 4, Delta: 0.05, Seed: 1,
//	})
//	// cluster.Center, cluster.Radius describe a ball holding ≈ 400 points.
//
// The module path is privcluster (see go.mod); import the root package as
// `import "privcluster"`.
//
// # The Dataset handle
//
// The free functions above are one-shot: every call re-validates, rescales
// and quantizes the points and rebuilds the ball index — the dominant
// preprocessing cost at n ≥ 10⁵ — and nothing stops a caller from silently
// over-spending a privacy budget across repeated calls on the same data.
// A serving process should open a reusable handle instead:
//
//	ds, err := privcluster.Open(points, privcluster.DatasetOptions{
//		Budget: privcluster.Budget{Epsilon: 3, Delta: 3e-6},
//	})
//	c1, err := ds.FindCluster(ctx, 400, privcluster.QueryOptions{Epsilon: 1, Delta: 1e-6})
//	c2, err := ds.FindCluster(ctx, 500, privcluster.QueryOptions{Epsilon: 1, Delta: 1e-6})
//
// Open performs validation, domain rescaling and grid quantization once.
// The first query lazily builds the ball index and caches it (keyed by the
// effective index policy), along with the radius stage's L(·, S) step
// function per queried t, so warm queries skip preprocessing entirely —
// BenchmarkDatasetReuse measures the drop at n = 100k (seconds →
// milliseconds). Under the same seed a handle query releases bit-for-bit
// what the free function releases; the free functions are in fact thin
// wrappers that open a single-use, budget-less handle.
//
// Budget semantics: the handle carries a total (ε, δ) budget from which
// each query deducts its cost — FindCluster and FindClusters cost their
// QueryOptions (ε, δ) (the k-cover splits its share internally), and
// InteriorPoint costs (2ε, 2δ), the Theorem 5.3 two-stage composition. A
// query that no longer fits is refused with a *BudgetError wrapping
// ErrBudgetExhausted (carrying total/spent/requested) before any mechanism
// runs, and Dataset.Remaining/Spent expose the accounting. Under basic
// composition (Theorem 2.1) the handle's releases jointly satisfy
// (ε, δ)-DP at the budget.
//
// # Serving and durable budgets
//
// The handle's own Budget is in-memory and per-handle: two handles opened
// over the same individuals' data each enforce only their own budget (the
// real-world guarantee is their composition, the sum), and a process
// restart forgets everything spent. For a single analysis process that is
// fine; for a server it is not — a privacy budget is only a guarantee if
// it survives crashes and spans every process that can touch the data.
//
// DatasetOptions.Admitter is the seam that fixes this: a non-nil Admitter
// replaces the in-handle gate, and every query's cost flows through a
// two-phase Reserve → Commit/Release protocol — reserved before any
// expensive work, committed once the mechanism has run (even on error:
// noise may have been drawn), released only when the mechanism provably
// never ran. One admission authority can gate many handles, with the
// per-query principal carried in the query context rather than on the
// handle.
//
// cmd/privclusterd packages the full stack: an HTTP/JSON daemon serving
// named datasets to API-key principals, each principal's (ε, δ) account
// kept in a durable, crash-safe ledger (an fsynced, checksummed
// append-only journal with snapshot compaction — internal/ledger) that
// the daemon holds under an exclusive process lock. A refusal therefore
// survives restarts and crashes — recovery conservatively commits any
// hold that was in flight, so a crash can lose a query's answer but never
// un-spend its budget — and a second daemon pointed at the same ledger
// directory refuses to start rather than jointly over-spend.
// examples/daemon proves the restart property end to end in CI.
//
// Queries take a context.Context. Cancellation is threaded through the
// long-running inner loops — the cell index's bulk-count worker pools, the
// SVT repetition loop in GoodCenter, the RecConcave recursion, KCover's
// rounds — so deadlines abort in-flight queries promptly without leaking
// goroutines. A context already cancelled at query entry consumes no
// budget; cancelling mid-flight does not refund the charge (noise may
// already have been drawn). The handle is safe for concurrent queries: the
// accountant and index cache are mutex-guarded, the index is built exactly
// once per configuration, and the budget can never be over-spent by racing
// queries.
//
// Independent queries on one handle batch: Dataset.FindClustersBatch runs
// a []Query concurrently against the shared cached index under the
// handle's single budget, with concurrency bounded by the Workers option.
// Each query is validated, charged and seeded exactly as the equivalent
// sequential call — seeded batches release bit-identical clusters to
// one-at-a-time queries; only budget admission order is
// scheduling-dependent when the remaining budget cannot cover the whole
// batch.
//
// # Scaling and index backends
//
// The pipeline's preprocessing runs on one of two interchangeable ball
// indexes (Options.IndexPolicy):
//
//   - IndexExact materializes all n² pairwise distances. Exact counts and
//     score function, Θ(n²) memory — viable for n in the low thousands.
//   - IndexScalable buckets points into a cell hash per radius scale and
//     resolves ball counts by per-cell candidate pruning: O(n·d) memory
//     and near-linear preprocessing, at the cost of a bounded
//     approximation in the radius search (the released radius can be a
//     small constant factor wider; privacy is entirely unaffected).
//   - IndexAuto (default) picks IndexExact up to a few thousand points and
//     IndexScalable beyond, so FindCluster handles 10⁵–10⁶ points without
//     ever allocating the quadratic matrix.
//
// # Sharding semantics
//
// The scalable index shards (Options.Shards / DatasetOptions.Shards): the
// points are partitioned into S shards — by a Z-order space-filling curve,
// so shards are spatially compact — each holding its own cell index, built
// in parallel. Every ball count is a sum over data partitions,
// B_r(x) = Σ_s |{y ∈ shard s : ‖x−y‖ ≤ r}|, so queries are answered by
// summing exact per-shard partial counts through the same worker pools.
// Three facts make sharding invisible to everything above it:
//
//   - Whether a member point contributes to a (exact or cell-granularity)
//     count depends only on its own position and the query point, never on
//     which other points share its shard — so per-shard counts are exact
//     partial sums, and the estimated L̂ is the same function of the
//     dataset as the unsharded one. The sensitivity-2 argument of
//     Lemma 4.5 (the heart of GoodRadius's privacy analysis) is therefore
//     byte-for-byte unchanged: sharding needs no new privacy accounting.
//   - Capping commutes with the partial sums:
//     min(Σ_s min(B_s, t), t) = min(B, t).
//   - Every shard is pinned to the global radius ladder, so all shards
//     (and the unsharded index) resolve a query radius at the same scale.
//
// Consequently sharded releases are bit-identical to unsharded ones under
// the same seed — a tested guarantee, not an approximation. Shards = 0
// (the default) is automatic: GOMAXPROCS shards at n ≥ 100,000, unsharded
// below; any explicit value is clamped to [1, n]. Sum-decomposition across
// data partitions is also the seam the distributed backend plugs into: a
// remote shard answering "how many of my points lie within r of these
// centers" drops into the same summation — see "Remote shards" below.
//
// GoodCenter's box-partition loop — one O(n·k) count pass per
// sparse-vector repetition — runs on a packed-key engine: per-axis cell
// indices are bit-packed into a single uint64 (hash-combined when they
// exceed 64 bits), and every histogram and buffer is reused across
// repetitions, with the count pass fanned out over Options.Workers
// goroutines. Options.BoxPacking selects the engine; the exact backends
// (packed and the legacy string keys) provably release bit-identical
// results under the same seed, and the hashed backend matches them barring
// a ≈ 2⁻⁶⁴-probability key collision (which merges two boxes — a utility
// blip, never a privacy one), so both knobs are pure performance tuning.
//
// # Remote shards
//
// The sum-decomposition above is location-transparent, and
// DatasetOptions.Placement exercises that: with shard-server addresses
// configured (one partition per replica set; the deprecated
// DatasetOptions.RemoteShards spells the single-replica case), the
// handle's ball index is built with one shard per partition,
// each served by a cmd/shardserver daemon over a versioned,
// length-prefixed binary wire protocol (internal/transport). The handshake
// ships the prepared global point set (or, for servers preloaded with
// -csv, a checksum that proves both sides prepared identical coordinates);
// after that every bulk query is one batched round trip per shard — a
// PARTIALS request returns the shard's capped counts around all n points
// at once, never one round trip per point. Releases remain bit-identical
// to local execution under the same seed (the equivalence contract
// survives serialization: coordinates travel as exact IEEE bit patterns),
// which examples/remote re-proves on every CI run. Protocol versions are
// negotiated at handshake; a mismatch fails fast with a typed error
// rather than misparsing frames. Context deadlines and cancellations
// propagate onto connection deadlines, broken connections are re-dialed
// and re-handshaken within a per-call retry budget, and a shard server
// dying mid-query surfaces a typed transport error — never a hang and
// never a partially summed count. Dataset.Close releases the connections.
//
// Cost model — when do remote shards beat local cores? The per-query
// preprocessing cost is the BuildLStep sweep: roughly
// L·n·(2·CellsPerRadius+2)^d / C point-cell operations for L ladder
// levels on C cores, and the sweep's levels are sequential. Remote
// execution replaces C local cores with S servers and adds, per level,
// one round trip carrying 4n bytes of counts per shard (plus the one-off
// handshake of 8nd bytes per shard). Remote wins when per-level compute
// dominates transport: n·(2c+2)^d/S · t_op ≫ RTT + 4n/bandwidth. At
// n = 10⁵ a level is a few hundred kilobytes against seconds of compute,
// so the crossover sits far below datacenter RTTs — the constraint is
// compute per level, not the wire. Conversely, a single machine with idle
// cores should prefer local sharding (DatasetOptions.Shards): it skips
// serialization entirely and shares one source-cell structure where each
// remote server must build its own (BenchmarkRemoteLoopback quantifies
// both overheads by running the protocol against servers in the same
// process). KCover's later rounds (k > 1) rebuild local indexes over the
// shrinking uncovered remainder — only round 1, the full-dataset cost,
// runs remote; releases are identical either way.
//
// Trust boundary: shard servers hold raw data points and answer exact
// counting queries about them — they sit inside the trust boundary, on
// the private side of the differential-privacy guarantee, which applies
// to the released outputs of the client pipeline and not to intra-cluster
// traffic or server memory. Deploy shard servers in the same trust domain
// as the data owner, and protect the links with the deployment's
// transport security (TLS/mTLS tunnels or a private network); the wire
// protocol itself is deliberately plain TCP and does not pretend to add
// privacy.
//
// # Replication and failover
//
// A Placement partition may list several replica addresses, and then shard
// server death stops being fatal: the partition's calls go to the first
// healthy replica, a failed call is retried on a sibling (the caller sees
// an error only after every replica of the partition has refused), and
// replicas marked down are re-probed in the background and rejoin the
// preference order when they recover. What makes this replication scheme
// almost embarrassingly simple is the query model: every bulk call a shard
// answers ("count your points within r of these centers") is a pure,
// deterministic read of an immutable point set, so any replica holding the
// partition's points returns the byte-identical answer and failover needs
// no consensus, no write-ahead state, and no reconciliation — switching
// replicas mid-sweep cannot be observed in the release, which
// examples/replicated re-proves in CI by hard-killing a replica mid-query.
// For the same reason hedged reads are safe: with Placement.HedgeDelay
// set, a straggling call is re-issued to a sibling after the delay and the
// first answer wins — the loser's answer is discarded, never summed, so
// hedging trades duplicated shard compute for tail latency and nothing
// else (BenchmarkReplicatedLoopback quantifies both the idle-standby cost,
// which is near zero since standby replicas are dialed lazily, and the
// hedging duplication). Health marks are a preference order, not a
// correctness input: a stale mark costs a wasted connection attempt or a
// failover hop, never a wrong count. Two boundaries follow from the model.
// Mutable handles require single-replica partitions — epoch sessions are
// connection-scoped, mutations are not idempotent, and silently failing
// over a stream would fork the epoch history. And replication does not
// shrink the trust boundary: every replica holds the partition's raw
// points, so each replica server must sit in the data owner's trust
// domain, and adding replicas widens the deployment surface that must be
// protected (the guarantee on released outputs is unaffected either way).
//
// # Streaming ingestion
//
// DatasetOptions.Mutable opens a handle whose point set can grow and
// shrink after Open: Append adds a batch of points (returning stable ids),
// Delete removes rows by id, and each successful mutation advances the
// handle's epoch by exactly one — Open is epoch 1. Queries run against
// epoch snapshots: by default the epoch current when the query pins its
// view, or an explicit one via QueryOptions.AtEpoch. The contract is the
// same equivalence that anchors sharding and the wire protocol: a query
// pinned at epoch E releases bit-identically (same seed, same outcome,
// success or failure) to a fresh Open on exactly the epoch-E point set —
// regardless of what the mutator does meanwhile, of Merge timing, and of
// whether the shards are in-process or remote. examples/ingest re-proves
// this in CI against live shard servers.
//
// Internally a snapshot is a row-prefix view: appends only ever extend the
// flat frame, so epoch E is "the first n_E rows", indexed as a frozen base
// generation plus a small delta index over the rows appended since the
// last merge — the same partition-independent sum decomposition sharding
// uses, so the split is invisible to releases. Merge (also triggered
// automatically once enough delta rows accumulate) folds the delta into a
// fresh base off the query path; it is a serving-cost knob, never a
// semantic one. Deletes compact the storage and therefore retire all older
// epochs: a query already holding its pin keeps answering, but a new pin
// of a pre-delete epoch fails with ErrEpochRetired (wrapped, with the
// epoch) unless its snapshot is still cached. Snapshots are cached per
// epoch and built single-flight; BenchmarkAppendMerge (gated in CI) tracks
// the steady-state append → query → delete/merge cycle.
//
// Privacy under mutation: the (ε, δ) ledger never moves on Append, Delete,
// or Merge — only releases spend. That is not an accounting shortcut but
// the sensitivity argument itself: each mechanism's differential-privacy
// analysis is per-release on the neighboring-database relation of the
// point set the pinned epoch holds, so mutating the data between releases
// changes which database the next release is private about, not how much
// budget it costs. The caveat is the same as for any interactive DP
// system: the budget bounds leakage about the rows present in the queried
// epochs; an adversary who also controls the mutation stream learns
// nothing extra from mutations alone, since mutations produce no output.
//
// Mutable sessions over RemoteShards are connection-scoped: mutations are
// not idempotent, so a broken shard connection is never silently re-dialed
// mid-epoch — the handle turns sticky-broken and every subsequent
// operation reports the failure rather than risking a cross-epoch answer.
// Open a fresh handle to resume (re-shipping the current rows), and treat
// transport failures on mutable remote handles as fatal.
//
// # Memory model
//
// The data-bearing layers share one representation: internal/vec.Frame, a
// single contiguous []float64 (or []float32 — below) holding n points of
// dimension d at stride d. Dataset.Open quantizes straight into a frame;
// index construction, the cell and distance indexes' count sweeps, shard
// Gather/partition, GoodCenter's projection and rotation passes, the
// k-means Lloyd loops, and the wire protocol's OPEN payload all run over
// that flat buffer (or no-copy row views of it) rather than n separate
// row allocations. Two contracts follow:
//
//   - Arithmetic is unchanged. The frame kernels compute distances in the
//     same float64 operation order as the per-point code they replaced, so
//     the layout is invisible to releases: seeded outputs are bit-identical
//     to the per-row representation, and every equivalence suite (local,
//     sharded, remote loopback) pins that.
//
//   - Warm queries reuse buffers instead of allocating. A Dataset handle
//     pools per-query scratch (rotation buffers, histogram maps, member
//     lists) and lends it through the pipeline; with the index cached, a
//     warm FindCluster allocates a few tens of kilobytes instead of
//     rebuilding megabytes of per-point structures per query
//     (BenchmarkDatasetReuse/warm, gated in CI on ns/op, allocs/op, and
//     B/op). Buffer reuse never changes releases — only where the
//     deterministic intermediates live.
//
// DatasetOptions.Precision selects the frame's storage width. The default
// Float64 is the paper-faithful mode every bit-for-bit guarantee refers
// to. Float32 halves resident point memory: coordinates are stored rounded
// to float32 and up-converted exactly to float64 for all arithmetic, so a
// Float32 handle is internally consistent (same seed, same release —
// locally and over remote shards, whose wire format carries the exact
// up-converted values). But it is a distinct release mode: its outputs are
// never bit-comparable to a Float64 handle's, and grids finer than
// float32's 24-bit mantissa (|X| ≳ 2²⁴) alias adjacent grid values. Use it
// when memory is the binding constraint and the grid is coarse; never
// compare its releases against Float64 baselines.
//
// # Errors and the feasible t/ε regime
//
// The private selections inside the pipeline release results only above
// noise thresholds that scale as (1/ε)·log(1/δ): GoodRadius's RecConcave
// search demands a quality promise Γ (Theorem 4.3's 8^{log*|X|} expression,
// capped at a fraction of t by the default profile), and its block release
// plus GoodCenter's stability-based box choice each need counts of order
// (1/ε)·log(1/δ) to fire. When t is within a small factor of Γ the run
// fails regardless of the data — historically as a bare, flaky promise
// violation after the budget was spent.
//
// Two mechanisms make that regime visible:
//
//   - Every entry point pre-flights the parameters and returns an error
//     wrapping ErrInfeasible (with the concrete floor and which of t/ε/δ/β
//     to adjust) when the cluster target sits below the feasibility floor:
//     FindCluster and FindClusters (evaluated at the per-round budget,
//     since k-cover splits (ε, δ) across rounds), InteriorPoint (whose
//     inner 1-cluster stage targets innerN/2 on the middle sub-database),
//     and Aggregate (whose target αk/2 is checked on the evaluations just
//     before the budget-spending aggregation). The floor is a pure function
//     of the parameters; the only data consulted is the duplicate
//     structure, so a dataset with ≈ t duplicated points (which succeeds
//     through the radius-zero path at any t) is never rejected. The
//     uncapped paper profile (Options.Paper) is exempt: its infeasibility
//     at practical scale is categorical and documented, not flaky. As a
//     reference point, the defaults (ε = 1, δ = 10⁻⁶, |X| = 2¹⁶) put the
//     floor near t ≈ 2000.
//   - Promise failures that do occur carry a typed diagnostic
//     (internal/recconcave.PromiseError) whose message reports the promise
//     Γ, the recursion depth, the per-level (ε, δ), and the t − 4Γ slack —
//     distinguishing "no cluster exists" from "this regime is infeasible".
//
// See the examples/ directory for runnable programs (examples/scale runs
// n = 200,000; examples/serving demonstrates the handle's amortization,
// budget accounting and deadlines; examples/remote self-checks the shard
// transport's equivalence; examples/ingest self-checks the streaming
// epoch model against live shard servers; examples/daemon proves the
// serving daemon's budgets survive a restart) and DESIGN.md for the system
// inventory, the
// paper-vs-implementation substitutions, and the experiment index.
// EXPERIMENTS.md reports paper-vs-measured results for every table and
// figure.
//
// # Observability
//
// Every query can be traced and measured end to end without changing
// what it releases. Run a query under WithTrace and the dataset opens a
// hierarchical span tree — reserve, index build, the mechanism stages
// (LStep sweep, RecConcave, SVT repetitions, the noisy average), commit
// — with per-stage durations and operation counters; retrieve it via
// QueryOptions.Stats or Dataset.LastStats and render it with
// QueryStats.Tree. The trace's 128-bit ID travels with the query: over
// the wire protocol to every shard server (which announces it on its
// structured log, so one query is greppable across machines), and in
// privclusterd as the X-Trace-Id response header, with the span tree
// fetchable back from GET /v1/trace/{id}. cmd/onecluster -trace prints
// the tree for any execution mode.
//
// Aggregate metrics are always on and allocation-free: process-wide
// Prometheus-text families (privcluster_query_stage_seconds,
// privcluster_shard_fanout_seconds, index/LStep cache and replica
// failover/hedge counters) exposed on privclusterd's /metrics alongside
// its own privclusterd_* request, budget and ledger-fsync families, and
// on cmd/shardserver's -admin listener. Both daemons also serve
// net/http/pprof on an opt-in admin address ("admin_listen" in the
// daemon config, -admin on shardserver).
//
// Two invariants bound the machinery. Instrumentation never carries
// data: spans, metrics, logs and trace JSON hold stage names, durations,
// counts, sizes and addresses — never point coordinates, dataset values
// or noise magnitudes (tested by scraping every surface and grepping for
// planted coordinates). And instrumentation never touches the privacy
// analysis: tracing reads no randomness and perturbs no release — the
// same seed yields bit-identical results traced or untraced, local or
// remote (a v3 wire session interops bit-identically with v2 peers).
//
// # Privacy disclaimer
//
// This is a research reproduction. Noise is generated with math/rand
// (seedable for reproducibility — which a production DP deployment must
// never allow) and floating-point side channels are not mitigated.
package privcluster
