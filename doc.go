// Package privcluster is a from-scratch Go implementation of
//
//	Kobbi Nissim, Uri Stemmer, Salil Vadhan.
//	"Locating a Small Cluster Privately." PODS 2016.
//
// It provides (ε, δ)-differentially private solutions to the 1-cluster
// problem: given n points in a discretized d-dimensional unit cube and a
// target size t, find a small ball containing at least ≈ t of the points,
// without leaking any individual point. The headline algorithm — GoodRadius
// followed by GoodCenter (Theorem 3.2 of the paper) — handles minority-size
// clusters (t sublinear in n and only 2^{O(log*|X|)} in the domain size) and
// approximates the optimal radius within O(√log n), independent of the
// dimension.
//
// On top of the 1-cluster solver the package exposes the paper's derived
// constructions: k-ball covering (Observation 3.5), private interior-point
// location (Algorithm 3, the reduction behind the Section 5 lower bound),
// and the sample-and-aggregate compiler (Algorithm SA, Section 6) that turns
// arbitrary non-private analyses into private ones.
//
// # Quick start
//
//	points := ... // [][]float64 in [0,1]^d
//	cluster, err := privcluster.FindCluster(points, 400, privcluster.Options{
//		Epsilon: 4, Delta: 0.05, Seed: 1,
//	})
//	// cluster.Center, cluster.Radius describe a ball holding ≈ 400 points.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory, the paper-vs-implementation substitutions, and the
// experiment index. EXPERIMENTS.md reports paper-vs-measured results for
// every table and figure.
//
// # Privacy disclaimer
//
// This is a research reproduction. Noise is generated with math/rand
// (seedable for reproducibility — which a production DP deployment must
// never allow) and floating-point side channels are not mitigated.
package privcluster
