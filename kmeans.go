package privcluster

import (
	"fmt"

	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/kmeans"
	"privcluster/internal/vec"
)

// KMeansOptions configures KMeans beyond the shared Options.
type KMeansOptions struct {
	Options
	// T is the per-cluster target size for the 1-cluster seeder
	// (default n/(2k)).
	T int
	// Rounds of Lloyd refinement (default 4).
	Rounds int
	// MoveRadius bounds each center's per-round movement — it is the
	// NoisyAVG predicate radius, so smaller values mean less noise
	// (default 0.25).
	MoveRadius float64
	// SeedFraction of ε spent on 1-cluster seeding (default 0.5).
	SeedFraction float64
}

// KMeansResult is a private clustering.
type KMeansResult struct {
	Centers []Point
	// Cost is the non-private k-means objective on the input — a
	// diagnostic; releasing it alongside Centers would cost extra budget.
	Cost float64
}

// KMeans privately clusters points into (at most) k groups: the centers are
// seeded by the iterated 1-cluster algorithm (Observation 3.5) and refined
// with Lloyd rounds whose center updates are NoisyAVG releases
// (Algorithm 5). This is the k-means application the paper motivates in
// §1.1; the whole run is (ε, δ)-DP by composition, verified internally with
// a budget accountant.
func KMeans(points []Point, k int, o KMeansOptions) (KMeansResult, error) {
	oo := o.Options.withDefaults()
	if len(points) == 0 {
		return KMeansResult{}, ErrNoPoints
	}
	pol, err := oo.IndexPolicy.core()
	if err != nil {
		return KMeansResult{}, err
	}
	d := len(points[0])
	grid, err := geometry.NewGrid(oo.GridSize, d)
	if err != nil {
		return KMeansResult{}, err
	}
	vs := make([]vec.Vector, len(points))
	for i, p := range points {
		if len(p) != d {
			return KMeansResult{}, fmt.Errorf("privcluster: point %d has dimension %d, want %d", i, len(p), d)
		}
		vs[i] = grid.Quantize(vec.Vector(p))
	}
	prm := kmeans.Params{
		K:            k,
		T:            o.T,
		Privacy:      dp.Params{Epsilon: oo.Epsilon, Delta: oo.Delta},
		SeedFraction: o.SeedFraction,
		Rounds:       o.Rounds,
		MoveRadius:   o.MoveRadius,
		Beta:         oo.Beta,
		Grid:         grid,
		Profile:      oo.profile(),
		Index:        pol,
	}
	res, err := kmeans.Run(oo.rng(), vs, prm)
	if err != nil {
		return KMeansResult{}, err
	}
	out := KMeansResult{Cost: res.Cost}
	for _, c := range res.Centers {
		out.Centers = append(out.Centers, Point(c))
	}
	return out, nil
}
