package privcluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"privcluster/internal/transport"
)

// placementOf shapes addrs into p partitions of r replicas.
func placementOf(addrs []string, p, r int, dial func(context.Context, string) (net.Conn, error)) *Placement {
	parts := make([][]string, p)
	for i := range parts {
		parts[i] = addrs[i*r : (i+1)*r]
	}
	return &Placement{Partitions: parts, Dial: dial}
}

// TestPlacementReleaseEquivalence pins the tentpole at the public API:
// seeded releases through a Placement — R ∈ {1, 2, 3} replicas per
// partition, hedging off and on — are bit-identical to local execution,
// and the deprecated RemoteShards form releases bit-identically to the
// equivalent single-replica Placement (it IS one, constructed internally).
func TestPlacementReleaseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts, _ := plantedPoints(rng, 6000, 4000, 2, 0.02) // scalable backend
	ctx := context.Background()
	q := QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 11}

	release := func(o DatasetOptions) Cluster {
		t.Helper()
		ds, err := Open(pts, o)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		c, err := ds.FindCluster(ctx, 3000, q)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	assertSame := func(name string, got, want Cluster) {
		t.Helper()
		if got.Radius != want.Radius || got.RawRadius != want.RawRadius ||
			got.Center[0] != want.Center[0] || got.Center[1] != want.Center[1] {
			t.Errorf("%s release differs: %+v vs %+v", name, got, want)
		}
	}

	ref := release(DatasetOptions{Shards: 2})
	const nparts = 2
	for _, r := range []int{1, 2, 3} {
		addrs, ln := startLoopbackServers(t, nparts*r)
		p := placementOf(addrs, nparts, r, ln.Dial)
		p.ProbeInterval = -1
		assertSame(fmt.Sprintf("R=%d", r), release(DatasetOptions{Placement: p}), ref)
		hedged := placementOf(addrs, nparts, r, ln.Dial)
		hedged.ProbeInterval = -1
		hedged.HedgeDelay = time.Nanosecond
		assertSame(fmt.Sprintf("R=%d hedged", r), release(DatasetOptions{Placement: hedged}), ref)
	}

	// Deprecated flat form vs its structured equivalent.
	addrs, ln := startLoopbackServers(t, nparts)
	old := release(DatasetOptions{RemoteShards: addrs, RemoteDial: ln.Dial})
	assertSame("RemoteShards wrapper", old, ref)
	assertSame("single-replica Placement", release(DatasetOptions{Placement: placementOf(addrs, nparts, 1, ln.Dial)}), ref)
}

// chokeDial wraps a dial func so connections to victim die once a shared
// read-byte budget is spent, and every later dial to it is refused — a
// replica crash the client's own reconnect cannot undo.
func chokeDial(dial func(context.Context, string) (net.Conn, error), victim string, budget int64) (func(context.Context, string) (net.Conn, error), *atomic.Bool) {
	var remaining atomic.Int64
	remaining.Store(budget)
	dead := &atomic.Bool{}
	return func(ctx context.Context, addr string) (net.Conn, error) {
		if addr != victim {
			return dial(ctx, addr)
		}
		if dead.Load() {
			return nil, fmt.Errorf("connect %s: connection refused", addr)
		}
		c, err := dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		return &chokedConn{Conn: c, budget: &remaining, dead: dead}, nil
	}, dead
}

type chokedConn struct {
	net.Conn
	budget *atomic.Int64
	dead   *atomic.Bool
}

func (c *chokedConn) Read(p []byte) (int, error) {
	if c.dead.Load() {
		c.Conn.Close()
		return 0, io.ErrClosedPipe
	}
	n, err := c.Conn.Read(p)
	if c.budget.Add(-int64(n)) < 0 {
		c.dead.Store(true)
		c.Conn.Close()
		if err == nil {
			err = io.ErrClosedPipe
		}
	}
	return n, err
}

// TestPlacementFailoverMidQuery kills one replica partway through the
// query's sweep at the public API layer: the release must come out
// bit-identical to local execution — the death is invisible except for the
// failover hop.
func TestPlacementFailoverMidQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts, _ := plantedPoints(rng, 6000, 4000, 2, 0.02)
	ctx := context.Background()
	q := QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 13}

	local, err := Open(pts, DatasetOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	ref, err := local.FindCluster(ctx, 3000, q)
	if err != nil {
		t.Fatal(err)
	}

	// The victim dies after ~40KB read — past the handshake (the OPEN echo
	// is tiny) and a few of the sweep's 4·n ≈ 24KB count responses.
	addrs, ln := startLoopbackServers(t, 4)
	dial, dead := chokeDial(ln.Dial, addrs[0], 40_000)
	p := placementOf(addrs, 2, 2, dial)
	p.ProbeInterval = -1
	ds, err := Open(pts, DatasetOptions{Placement: p})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	got, err := ds.FindCluster(ctx, 3000, q)
	if err != nil {
		t.Fatalf("FindCluster through replica death: %v", err)
	}
	if got.Radius != ref.Radius || got.RawRadius != ref.RawRadius ||
		got.Center[0] != ref.Center[0] || got.Center[1] != ref.Center[1] {
		t.Errorf("failover release differs: %+v vs %+v", got, ref)
	}
	if !dead.Load() {
		t.Error("victim outlived the query — the kill never happened")
	}
}

// TestPlacementCacheKey is the cache-ambiguity regression: the structural
// key must separate every distinct placement — including the collisions
// the old comma-join was blind to — while the deprecated flat form shares
// its equivalent Placement's identity (one wrapper, one index).
func TestPlacementCacheKey(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts, _ := plantedPoints(rng, 5000, 3000, 2, 0.02)

	key := func(o DatasetOptions) indexKey {
		t.Helper()
		ds, err := Open(pts, o)
		if err != nil {
			t.Fatal(err)
		}
		return ds.effectiveKey()
	}

	// The comma-join ambiguity: one shard at "a,b" vs two shards "a", "b".
	joined := key(DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a,b"}}}})
	split := key(DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a"}, {"b"}}}})
	if joined.remote == split.remote {
		t.Fatalf("[\"a,b\"] and [\"a\"],[\"b\"] share a cache key: %q", joined.remote)
	}

	// Replica structure is identity: 1 partition × 2 replicas vs
	// 2 partitions × 1 replica over the same addresses build different
	// indexes (different shard counts!) and must never share a slot.
	oneOf2 := key(DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a", "b"}}}})
	twoOf1 := key(DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a"}, {"b"}}}})
	if oneOf2 == twoOf1 {
		t.Fatalf("{a,b} and {a},{b} placements share a cache key: %+v", oneOf2)
	}

	// Length-prefixing defeats separator injection inside addresses.
	inj := key(DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a|1:b"}}}})
	two := key(DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a", "b"}}}})
	if inj.remote == two.remote {
		t.Fatalf("injected separator collides: %q", inj.remote)
	}

	// The deprecated wrapper IS the single-replica placement: same key,
	// same cached index.
	old := key(DatasetOptions{RemoteShards: []string{"a", "b"}})
	structured := key(DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a"}, {"b"}}}})
	if old != structured {
		t.Fatalf("RemoteShards key %+v != equivalent Placement key %+v", old, structured)
	}

	// Knobs and Dial are transport mechanics, not identity.
	knobs := key(DatasetOptions{Placement: &Placement{
		Partitions: [][]string{{"a"}, {"b"}},
		Retries:    3, HedgeDelay: time.Millisecond, ProbeInterval: time.Second,
	}})
	if knobs != structured {
		t.Fatalf("failover knobs changed the cache key: %+v vs %+v", knobs, structured)
	}
}

// TestPlacementValidation covers the Open-time rejections of malformed
// placements and conflicting option forms.
func TestPlacementValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts, _ := plantedPoints(rng, 100, 60, 2, 0.02)
	cases := []struct {
		name string
		o    DatasetOptions
	}{
		{"no partitions", DatasetOptions{Placement: &Placement{}}},
		{"empty partition", DatasetOptions{Placement: &Placement{Partitions: [][]string{{}}}}},
		{"empty replica", DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a", ""}}}}},
		{"duplicate replica", DatasetOptions{Placement: &Placement{Partitions: [][]string{{"a", "a"}}}}},
		{"placement plus RemoteShards", DatasetOptions{
			Placement:    &Placement{Partitions: [][]string{{"a"}}},
			RemoteShards: []string{"b"},
		}},
		{"placement plus RemoteDial", DatasetOptions{
			Placement:  &Placement{Partitions: [][]string{{"a"}}},
			RemoteDial: func(context.Context, string) (net.Conn, error) { return nil, nil },
		}},
		{"mutable multi-replica", DatasetOptions{
			Mutable:   true,
			Placement: &Placement{Partitions: [][]string{{"a", "b"}}},
		}},
	}
	for _, tc := range cases {
		if _, err := Open(pts, tc.o); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestPlacementJSON: the file schema round-trips through EncodeJSON /
// ParsePlacement / LoadPlacement, and typos in operational configs fail
// loudly.
func TestPlacementJSON(t *testing.T) {
	p := &Placement{
		Partitions:    [][]string{{"host-a:9001", "host-b:9001"}, {"host-c:9001"}},
		Retries:       2,
		HedgeDelay:    20 * time.Millisecond,
		ProbeInterval: 2 * time.Second,
		DialTimeout:   10 * time.Second,
	}
	data, err := p.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "placement.json")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacement(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.cacheKey() != p.cacheKey() {
		t.Fatalf("round trip changed partitions: %q vs %q", got.cacheKey(), p.cacheKey())
	}
	if got.Retries != p.Retries || got.HedgeDelay != p.HedgeDelay ||
		got.ProbeInterval != p.ProbeInterval || got.DialTimeout != p.DialTimeout {
		t.Fatalf("round trip changed knobs: %+v vs %+v", got, p)
	}

	for name, bad := range map[string]string{
		"unknown field":   `{"partitions": [["a"]], "hedge_ms": 5}`,
		"no partitions":   `{}`,
		"empty partition": `{"partitions": [[]]}`,
		"syntax":          `{"partitions": [`,
	} {
		if _, err := ParsePlacement([]byte(bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestPlacementAllDeadAndPreCancel: every replica dead surfaces one typed
// transport error; a context cancelled before the query spends no budget
// through the replicated path.
func TestPlacementAllDeadAndPreCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pts, _ := plantedPoints(rng, 5000, 3000, 2, 0.02)
	deadNet := transport.NewLoopbackNet() // nothing listens
	p := &Placement{Partitions: [][]string{{"gone-1", "gone-2"}}, Dial: deadNet.Dial, ProbeInterval: -1}
	ds, err := Open(pts, DatasetOptions{Placement: p, Budget: Budget{Epsilon: 10, Delta: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	// Pre-cancelled: refused before admission, before any dial.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.FindCluster(ctx, 3000, QueryOptions{Epsilon: 2, Delta: 1e-5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
	if spent := ds.Spent(); !spent.IsZero() {
		t.Fatalf("pre-cancelled query spent %+v", spent)
	}

	// All replicas dead: one typed error, promptly.
	start := time.Now()
	_, err = ds.FindCluster(context.Background(), 3000, QueryOptions{Epsilon: 2, Delta: 1e-5})
	var te *transport.Error
	if !errors.As(err, &te) {
		t.Fatalf("all-dead query: err = %v, want *transport.Error", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("all-dead error took %v", elapsed)
	}
}
