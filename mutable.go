package privcluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// ErrClosed is returned by every query and mutation on a Dataset handle
// after Close; errors.Is(err, ErrClosed) identifies it.
var ErrClosed = errors.New("privcluster: dataset handle is closed")

// ErrEpochRetired is returned when QueryOptions.AtEpoch pins an epoch a
// delete has retired (and whose snapshot is no longer cached), or one that
// does not exist yet. Wrapped errors carry the epoch; errors.Is(err,
// ErrEpochRetired) identifies them.
var ErrEpochRetired = errors.New("privcluster: epoch retired or unknown")

// maxCachedEpochValues bounds the per-epoch sorted-value copies a 1-D
// mutable handle keeps for InteriorPoint (FIFO-evicted; re-cut on demand).
const maxCachedEpochValues = 8

// maxValsHistory bounds how many epochs back the 1-D value mirror can cut
// an InteriorPoint snapshot for — the same depth the geometry layer keeps
// its append bookkeeping.
const maxValsHistory = 4096

// errNotMutable refuses mutations on a handle opened without
// DatasetOptions.Mutable.
func errNotMutable(op string) error {
	return fmt.Errorf("privcluster: %s on an immutable dataset (open with DatasetOptions.Mutable)", op)
}

// Epoch returns the handle's current epoch: 1 at Open, advancing by
// exactly one per successful Append or Delete. Immutable handles report 0.
func (ds *Dataset) Epoch() uint64 {
	if ds.mut == nil {
		return 0
	}
	return uint64(ds.mut.Epoch())
}

// Append adds points to a mutable handle, returning their assigned stable
// ids (usable with Delete) and the new epoch. The points are domain-mapped
// and grid-quantized exactly as Open's were, so a snapshot of the new
// epoch answers bit-identically to a fresh Open on the concatenated point
// set. Mutation spends no privacy budget: the mechanisms' sensitivity
// analysis is per-release on whatever the pinned epoch holds, and only
// releases spend. Queries already in flight are unaffected — they hold
// their own epoch's snapshot.
func (ds *Dataset) Append(ctx context.Context, points []Point) ([]uint64, uint64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ds.checkOpen(); err != nil {
		return nil, 0, err
	}
	if ds.mut == nil {
		return nil, 0, errNotMutable("Append")
	}
	if len(points) == 0 {
		return nil, 0, fmt.Errorf("privcluster: Append of no points")
	}
	d := ds.dim
	frame := vec.NewFrame(len(points), d)
	var raw []float64
	if d == 1 {
		raw = make([]float64, len(points))
	}
	u := make(vec.Vector, d)
	for i, p := range points {
		if len(p) != d {
			return nil, 0, fmt.Errorf("privcluster: point %d has dimension %d, want %d", i, len(p), d)
		}
		for j, x := range p {
			u[j] = ds.opts.toUnit(x)
		}
		if d == 1 {
			raw[i] = u[0]
		}
		ds.grid.QuantizeInto(u, u)
		frame.SetRow(i, u)
	}
	ds.mutMu.Lock()
	defer ds.mutMu.Unlock()
	ids, epoch, err := ds.mut.Append(ctx, frame)
	if err != nil {
		return nil, 0, err
	}
	if d == 1 {
		ds.rawVals = append(ds.rawVals, raw...)
		ds.rowIDs = append(ds.rowIDs, ids...)
		ds.recordValsEpochLocked(uint64(epoch))
	}
	return ids, uint64(epoch), nil
}

// Delete removes points by id from a mutable handle, returning the new
// epoch. Every id must exist exactly once, and a delete may not empty the
// dataset (or any shard of a sharded handle). Deleting retires older
// epochs: queries already pinned keep their snapshots, but new pins of a
// pre-delete epoch fail with ErrEpochRetired unless the snapshot is still
// cached. Like Append, deletion spends no budget.
func (ds *Dataset) Delete(ctx context.Context, ids []uint64) (uint64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ds.checkOpen(); err != nil {
		return 0, err
	}
	if ds.mut == nil {
		return 0, errNotMutable("Delete")
	}
	ds.mutMu.Lock()
	defer ds.mutMu.Unlock()
	epoch, err := ds.mut.Delete(ctx, ids)
	if err != nil {
		return 0, err
	}
	if ds.dim == 1 {
		gone := make(map[uint64]struct{}, len(ids))
		for _, id := range ids {
			gone[id] = struct{}{}
		}
		keep := 0
		for i, id := range ds.rowIDs {
			if _, dead := gone[id]; dead {
				continue
			}
			ds.rawVals[keep] = ds.rawVals[i]
			ds.rowIDs[keep] = id
			keep++
		}
		ds.rawVals = ds.rawVals[:keep]
		ds.rowIDs = ds.rowIDs[:keep]
		// The mirror history restarts at the delete epoch: older cuts are
		// no longer derivable from the compacted arrays.
		ds.valsAt = map[uint64]int{uint64(epoch): keep}
		ds.valsAtOrder = append(ds.valsAtOrder[:0], uint64(epoch))
		ds.valsCache = make(map[uint64][]float64)
		ds.valsCacheOrder = nil
	}
	return uint64(epoch), nil
}

// Merge folds the mutable index's append deltas into its base structures —
// a background cost knob, not a semantic one: answers at every epoch are
// identical before and after. The handle also merges automatically once
// enough delta rows accumulate.
func (ds *Dataset) Merge(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ds.checkOpen(); err != nil {
		return err
	}
	if ds.mut == nil {
		return errNotMutable("Merge")
	}
	return ds.mut.Merge(ctx)
}

// recordValsEpochLocked notes the 1-D mirror's length at a fresh epoch,
// FIFO-bounding the history. Caller holds mutMu.
func (ds *Dataset) recordValsEpochLocked(epoch uint64) {
	ds.valsAt[epoch] = len(ds.rawVals)
	ds.valsAtOrder = append(ds.valsAtOrder, epoch)
	if len(ds.valsAtOrder) > maxValsHistory {
		delete(ds.valsAt, ds.valsAtOrder[0])
		ds.valsAtOrder = ds.valsAtOrder[1:]
	}
}

// pinEpoch resolves atEpoch (0 = current) and returns the cached snapshot
// for it, building it exactly once per epoch even under concurrent
// queries. The snapshot build draws no randomness, so a cached snapshot
// releases bit-identical seeded results to a fresh Open on the same rows.
func (ds *Dataset) pinEpoch(atEpoch uint64) (geometry.BallIndex, error) {
	cur := ds.mut.Epoch()
	e := geometry.Epoch(atEpoch)
	if e == geometry.EpochFrozen {
		e = cur
	} else if e > cur {
		// Not cached: the epoch may exist later, and pinning it then must
		// succeed.
		return nil, fmt.Errorf("%w: AtEpoch=%d is ahead of the current epoch %d", ErrEpochRetired, atEpoch, cur)
	}
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return nil, ErrClosed
	}
	ent, ok := ds.epochs[e]
	if !ok {
		ent = &indexEntry{}
		ds.epochs[e] = ent
		ds.epochOrder = append(ds.epochOrder, e)
		if max := ds.indexCacheSize(); len(ds.epochOrder) > max {
			// In-flight queries keep their entry reference; dropping the
			// map slot only forces the next pin of that epoch to rebuild
			// (or fail, if a delete has since retired it).
			delete(ds.epochs, ds.epochOrder[0])
			ds.epochOrder = ds.epochOrder[1:]
		}
	}
	ds.mu.Unlock()
	ent.once.Do(func() {
		// Background context: the snapshot is shared by every later query
		// of this epoch, so one caller's deadline must not poison it.
		ix, err := ds.mut.Snapshot(context.Background(), e)
		if err != nil {
			if errors.Is(err, geometry.ErrEpochRetired) {
				err = fmt.Errorf("%w: epoch %d (retired by a delete)", ErrEpochRetired, e)
			}
			ent.err = err
			return
		}
		ent.ix = newCachedIndex(ix)
	})
	return ent.ix, ent.err
}

// epochValues returns the sorted raw values of the pinned epoch — what
// InteriorPoint runs on. Cuts are cached per epoch (FIFO-bounded); a cut
// of the epoch-e prefix of the insertion-ordered mirror holds exactly the
// multiset a fresh Open on that epoch's points would sort.
func (ds *Dataset) epochValues(atEpoch uint64) ([]float64, error) {
	ds.mutMu.Lock()
	defer ds.mutMu.Unlock()
	e := atEpoch
	if e == 0 {
		e = uint64(ds.mut.Epoch())
	}
	if v, ok := ds.valsCache[e]; ok {
		return v, nil
	}
	n, ok := ds.valsAt[e]
	if !ok {
		return nil, fmt.Errorf("%w: epoch %d has no retained raw values", ErrEpochRetired, e)
	}
	v := append([]float64(nil), ds.rawVals[:n]...)
	sort.Float64s(v)
	ds.valsCache[e] = v
	ds.valsCacheOrder = append(ds.valsCacheOrder, e)
	if len(ds.valsCacheOrder) > maxCachedEpochValues {
		delete(ds.valsCache, ds.valsCacheOrder[0])
		ds.valsCacheOrder = ds.valsCacheOrder[1:]
	}
	return v, nil
}
