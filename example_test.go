package privcluster_test

import (
	"fmt"
	"math/rand"

	"privcluster"
)

// ExampleFindCluster locates a planted majority cluster and reports how
// many points the released ball captures.
func ExampleFindCluster() {
	rng := rand.New(rand.NewSource(1))
	points := make([]privcluster.Point, 0, 800)
	for i := 0; i < 500; i++ { // tight cluster near (0.4, 0.6)
		points = append(points, privcluster.Point{
			0.4 + (rng.Float64()*2-1)*0.02,
			0.6 + (rng.Float64()*2-1)*0.02,
		})
	}
	for i := 0; i < 300; i++ { // uniform background
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}

	cluster, err := privcluster.FindCluster(points, 400, privcluster.Options{
		Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ball captures at least t points: %v\n", cluster.Count(points) >= 400)
	fmt.Printf("radius below the domain diameter: %v\n", cluster.Radius < 1.5)
	// Output:
	// ball captures at least t points: true
	// radius below the domain diameter: true
}

// ExampleAggregate compiles a non-private block-mean estimator into a
// private one with sample-and-aggregate.
func ExampleAggregate() {
	rng := rand.New(rand.NewSource(2))
	rows := make([]float64, 40000)
	for i := range rows {
		rows[i] = 0.5 + rng.NormFloat64()*0.01
	}
	blockMean := func(rs []float64) privcluster.Point {
		var s float64
		for _, r := range rs {
			s += r
		}
		m := s / float64(len(rs))
		return privcluster.Point{m, m}
	}
	z, err := privcluster.Aggregate(rows, blockMean, 2, 5, 0.8, privcluster.Options{
		Epsilon: 4, Delta: 0.05, Seed: 13, GridSize: 4096,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("estimate within 0.2 of the true location: %v\n",
		z[0] > 0.3 && z[0] < 0.7 && z[1] > 0.3 && z[1] < 0.7)
	// Output:
	// estimate within 0.2 of the true location: true
}
