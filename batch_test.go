package privcluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestFindClustersBatchMatchesSequential: a batch whose queries carry
// their own seeds releases bit-identical clusters to issuing the same
// queries sequentially on an identically configured handle — the batch
// executor only schedules, it never changes what runs.
func TestFindClustersBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	open := func() *Dataset {
		t.Helper()
		ds, err := Open(pts, DatasetOptions{GridSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	queries := []Query{
		{T: 400, Opts: QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 1}},
		{T: 450, Opts: QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 2}},
		{T: 300, K: 2, Opts: QueryOptions{Epsilon: 12, Delta: 0.06, Seed: 3}},
		{T: 5000, Opts: QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 4}}, // t > n: per-query error
	}

	seq := open()
	var want []BatchResult
	for _, q := range queries {
		if q.K > 1 {
			cs, err := seq.FindClusters(context.Background(), q.K, q.T, q.Opts)
			want = append(want, BatchResult{Clusters: cs, Err: err})
			continue
		}
		c, err := seq.FindCluster(context.Background(), q.T, q.Opts)
		if err != nil {
			want = append(want, BatchResult{Err: err})
			continue
		}
		want = append(want, BatchResult{Clusters: []Cluster{c}})
	}

	got := open().FindClustersBatch(context.Background(), queries)
	if len(got) != len(want) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Errorf("query %d: err = %v, sequential err = %v", i, got[i].Err, want[i].Err)
			continue
		}
		if len(got[i].Clusters) != len(want[i].Clusters) {
			t.Errorf("query %d: %d clusters, want %d", i, len(got[i].Clusters), len(want[i].Clusters))
			continue
		}
		for k := range want[i].Clusters {
			g, w := got[i].Clusters[k], want[i].Clusters[k]
			if g.Radius != w.Radius || g.RawRadius != w.RawRadius || g.Center[0] != w.Center[0] {
				t.Errorf("query %d cluster %d differs: %+v vs %+v", i, k, g, w)
			}
		}
	}
	if got[3].Err == nil {
		t.Error("t > n query succeeded in batch")
	}
}

// TestFindClustersBatchBudget: the batch runs under the handle's single
// budget — exactly the affordable number of queries get through, the rest
// are refused with ErrBudgetExhausted, and the total spend never exceeds
// the cap (the race-safety the shared accountant guarantees).
func TestFindClustersBatchBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	const affordable = 2
	ds, err := Open(pts, DatasetOptions{
		GridSize: 1024,
		Budget:   Budget{Epsilon: 4 * affordable, Delta: 0.05 * affordable},
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 5)
	for i := range queries {
		queries[i] = Query{T: 400, Opts: QueryOptions{Epsilon: 4, Delta: 0.05, Seed: int64(i) + 1}}
	}
	results := ds.FindClustersBatch(context.Background(), queries)
	ran, refused := 0, 0
	for _, r := range results {
		switch {
		case errors.Is(r.Err, ErrBudgetExhausted):
			refused++
		default:
			ran++
		}
	}
	if ran != affordable || refused != len(queries)-affordable {
		t.Errorf("batch ran %d queries (want %d), refused %d (want %d)",
			ran, affordable, refused, len(queries)-affordable)
	}
	if got := ds.Spent(); got != (Budget{Epsilon: 4 * affordable, Delta: 0.05 * affordable}) {
		t.Errorf("batch spend = %v, want the full budget", got)
	}
	if builds := ds.builds.Load(); builds != 1 {
		t.Errorf("concurrent batch built the index %d times, want 1", builds)
	}
}

// TestFindClustersBatchEdgeCases: empty batches, nil contexts and
// pre-cancelled contexts behave like their sequential counterparts.
func TestFindClustersBatchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	do := DatasetOptions{GridSize: 1024, Budget: Budget{Epsilon: 8, Delta: 0.1}}
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.FindClustersBatch(nil, nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := ds.FindClustersBatch(ctx, []Query{
		{T: 400, Opts: QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 1}},
		{T: 300, K: 2, Opts: QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 2}},
	})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("pre-cancelled batch query %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	if got := ds.Spent(); !got.IsZero() {
		t.Errorf("pre-cancelled batch consumed %v of budget", got)
	}
}
